package model

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzDecodeSystem drives the hardened JSON decoder with arbitrary bytes:
// any input must produce either a valid system or an error — never a
// panic, and never a system that fails its own validation. Run with
//
//	go test -fuzz FuzzDecodeSystem ./internal/model
//
// for an open-ended search; the seeds below (including the shipped
// testdata) run as part of `go test`.
func FuzzDecodeSystem(f *testing.F) {
	for _, name := range []string{"pipeline.json", "loopshop.json", "network.json", "forkjoin.json"} {
		if data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name)); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"processors": [{"scheduler": "SPP"}], "jobs": []}`))
	f.Add([]byte(`{"processors": [{"scheduler": "??"}]}`))
	f.Add([]byte(`{"jobs": [{"deadline": -1, "subjobs": [{"proc": 9}], "releases": [3, 1]}]}`))
	f.Add([]byte(`[1, 2, 3]`))
	f.Add([]byte(`{"processors"`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := Load(bytes.NewReader(data))
		if err != nil {
			if sys != nil {
				t.Fatal("Load returned both a system and an error")
			}
			return
		}
		// A decoded system must satisfy its own invariants and survive a
		// marshal/unmarshal round trip.
		if verr := sys.Validate(); verr != nil {
			t.Fatalf("Load accepted a system failing Validate: %v", verr)
		}
		out, merr := json.Marshal(sys)
		if merr != nil {
			t.Fatalf("re-marshal failed: %v", merr)
		}
		if _, rerr := Load(bytes.NewReader(out)); rerr != nil {
			t.Fatalf("round trip rejected: %v\n%s", rerr, out)
		}
	})
}

// FuzzDecodeDAGJob targets the precedence decoder specifically: the fuzz
// input is spliced into the "precedence" field of an otherwise fixed,
// valid three-hop job. Whatever the bytes are, Load must never panic; if
// the fragment is a structurally well-formed list (so the only possible
// complaint is the DAG semantics — cycles, out-of-range hops, self-loops,
// duplicates, disconnection, wrong length), a rejection must be a typed
// *ValidationError; and an accepted job must round-trip with its
// precedence intact and index into an acyclic topology.
func FuzzDecodeDAGJob(f *testing.F) {
	for _, frag := range []string{
		`null`,                      // chain semantics
		`[[],[0],[1]]`,              // explicit chain
		`[null,[0],[0],[1,2]]`,      // diamond fork-join
		`[[1],[0],[1]]`,             // cycle
		`[[],[5],[1]]`,              // out-of-range predecessor
		`[[],[-1],[1]]`,             // negative predecessor
		`[[1],[0]]`,                 // wrong length (2 rows for 3 hops)
		`[[],[0,0],[1]]`,            // duplicate predecessor
		`[[2],[0],[0]]`,             // cycle through a forward edge (0 -> 2 -> 0)
		`[[],[],[1]]`,               // disconnected (hop 0 isolated from 1 -> 2)
		`[[0],[0],[1]]`,             // self-loop on hop 0
		`"x"`,                       // wrong JSON type
		`[[],[0],[18446744073709]]`, // big index
	} {
		f.Add([]byte(frag))
	}
	f.Fuzz(func(t *testing.T, frag []byte) {
		doc := fmt.Sprintf(`{"processors":[{"name":"P","scheduler":"SPP"}],
			"jobs":[{"name":"t","deadline":100,"releases":[0,10],
			"subjobs":[{"proc":0,"exec":1},{"proc":0,"exec":2,"priority":1},{"proc":0,"exec":3,"priority":2}],
			"precedence":%s}]}`, frag)
		sys, err := Load(bytes.NewReader([]byte(doc)))
		if err != nil {
			if sys != nil {
				t.Fatal("Load returned both a system and an error")
			}
			// If the fragment alone is a well-formed, size-bounded [][]int,
			// the whole document is syntactically fine and within limits, so
			// the rejection must come from Validate as a *ValidationError.
			var prec [][]int
			if json.Unmarshal(frag, &prec) == nil && len(prec) <= DefaultLimits.MaxSubjobs {
				ok := true
				for _, row := range prec {
					if len(row) > DefaultLimits.MaxSubjobs {
						ok = false
					}
				}
				if ok {
					var verr *ValidationError
					if !errors.As(err, &verr) {
						t.Fatalf("semantic precedence rejection is not a *ValidationError: %v", err)
					}
				}
			}
			return
		}
		if verr := sys.Validate(); verr != nil {
			t.Fatalf("Load accepted a system failing Validate: %v", verr)
		}
		// Topology construction must succeed and respect the DAG: every
		// predecessor edge points at a lower topological level.
		topo := sys.Topology()
		if len(topo.Sources(0)) == 0 || len(topo.Sinks(0)) == 0 {
			t.Fatalf("accepted DAG has no sources or no sinks: %s", frag)
		}
		out, merr := json.Marshal(sys)
		if merr != nil {
			t.Fatalf("re-marshal failed: %v", merr)
		}
		back, rerr := Load(bytes.NewReader(out))
		if rerr != nil {
			t.Fatalf("round trip rejected: %v\n%s", rerr, out)
		}
		var scratch, scratch2 [1]int
		for j := range sys.Jobs[0].Subjobs {
			got := back.Jobs[0].HopPreds(j, &scratch)
			want := sys.Jobs[0].HopPreds(j, &scratch2)
			if !reflect.DeepEqual(append([]int{}, got...), append([]int{}, want...)) {
				t.Fatalf("round trip changed hop %d predecessors: %v != %v", j, got, want)
			}
		}
	})
}
