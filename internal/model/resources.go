package model

import "fmt"

// CriticalSection is a span of a subjob's execution during which it holds
// a shared resource. The paper's conclusion lists shared-resource support
// as future work; this module implements it for resources local to one
// processor under the immediate priority ceiling protocol (IPCP, also
// called the highest locker protocol), whose worst-case blocking equals
// the classical priority ceiling protocol's: at most one critical section
// of a lower-priority subjob whose resource ceiling reaches the analyzed
// priority.
//
// Sections are given in execution-time coordinates: the subjob takes the
// lock after Start ticks of its own execution and releases it after
// Start+Duration ticks. Sections of one subjob must be sorted, non-empty,
// non-overlapping and contained in [0, Exec].
type CriticalSection struct {
	// Resource identifies the shared resource (small non-negative int).
	Resource int
	// Start is the executed-time offset at which the lock is taken.
	Start Ticks
	// Duration is the executed time for which the lock is held.
	Duration Ticks
}

// ValidateResources checks the critical-section structure and the
// local-resource restriction: every user of a resource must live on the
// same processor (remote resource access is the part of the paper's
// future work this module does not cover).
func (s *System) ValidateResources() error {
	procOf := map[int]int{} // resource -> processor
	for k := range s.Jobs {
		for j := range s.Jobs[k].Subjobs {
			sj := &s.Jobs[k].Subjobs[j]
			if err := validateSubjobCS(fmt.Sprintf("job %d hop %d", k, j), sj); err != nil {
				return err
			}
			for _, cs := range sj.CS {
				if p, ok := procOf[cs.Resource]; ok && p != sj.Proc {
					return fmt.Errorf("model: resource %d used on processors %d and %d; resources must be local",
						cs.Resource, p, sj.Proc)
				}
				procOf[cs.Resource] = sj.Proc
			}
		}
	}
	return nil
}

// validateSubjobCS checks one hop's critical-section structure (the
// per-subjob half of ValidateResources; the cross-job local-resource
// restriction needs the whole system and stays with the callers).
func validateSubjobCS(label string, sj *Subjob) error {
	var prev Ticks = -1
	for c, cs := range sj.CS {
		if cs.Resource < 0 {
			return fmt.Errorf("model: %s section %d: negative resource", label, c)
		}
		if cs.Duration <= 0 {
			return fmt.Errorf("model: %s section %d: non-positive duration", label, c)
		}
		if cs.Start < 0 || cs.Start+cs.Duration > sj.Exec {
			return fmt.Errorf("model: %s section %d: outside execution [0,%d]", label, c, sj.Exec)
		}
		if cs.Start < prev {
			return fmt.Errorf("model: %s section %d: sections overlap or are unsorted", label, c)
		}
		prev = cs.Start + cs.Duration
	}
	return nil
}

// HasResources reports whether any subjob declares a critical section.
func (s *System) HasResources() bool {
	for k := range s.Jobs {
		for _, sj := range s.Jobs[k].Subjobs {
			if len(sj.CS) > 0 {
				return true
			}
		}
	}
	return false
}

// Ceiling returns the resource's priority ceiling on its processor: the
// highest (numerically smallest) priority among the subjobs that use it.
// The boolean reports whether the resource is used at all. Cached in the
// topology index.
func (s *System) Ceiling(resource int) (int, bool) {
	c, ok := s.Topology().Ceilings()[resource]
	return c, ok
}

// PCPBlocking returns the worst-case blocking of subjob r on its SPP
// processor under the (immediate) priority ceiling protocol: the longest
// critical section of any strictly lower-priority subjob on the same
// processor whose resource ceiling is at least r's priority (ceiling
// comparisons use the numeric priority; ties block, matching the
// deterministic tie-break). On SPNP and FCFS processors execution is
// non-preemptable, so local resources are never contended and contribute
// no extra blocking beyond Equation (15). Cached in the topology index.
func (s *System) PCPBlocking(r SubjobRef) Ticks {
	return s.Topology().PCPBlocking(r)
}
