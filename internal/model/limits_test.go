package model

import (
	"fmt"
	"strings"
	"testing"
)

// limitDoc builds a JSON system with the given collection sizes.
func limitDoc(procs, jobs, subjobs, releases, cs int) string {
	var b strings.Builder
	b.WriteString(`{"processors": [`)
	for p := 0; p < procs; p++ {
		if p > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"scheduler": "SPNP"}`)
	}
	b.WriteString(`], "jobs": [`)
	for k := 0; k < jobs; k++ {
		if k > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"deadline": 1000, "subjobs": [`)
		for j := 0; j < subjobs; j++ {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(`{"proc": 0, "exec": 10, "criticalSections": [`)
			for c := 0; c < cs; c++ {
				if c > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, `{"resource": 0, "start": %d, "duration": 1}`, c)
			}
			b.WriteString(`]}`)
		}
		b.WriteString(`], "releases": [`)
		for i := 0; i < releases; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", i*100)
		}
		b.WriteString(`]}`)
	}
	b.WriteString(`]}`)
	return b.String()
}

// TestLoadLimitedByteCap: input larger than MaxBytes is rejected with the
// documented message, before decoding.
func TestLoadLimitedByteCap(t *testing.T) {
	doc := limitDoc(1, 1, 1, 2, 0)
	lim := DefaultLimits
	lim.MaxBytes = int64(len(doc)) - 1
	_, err := LoadLimited(strings.NewReader(doc), lim)
	if err == nil || !strings.Contains(err.Error(), "byte limit") {
		t.Fatalf("err = %v, want the byte-limit error", err)
	}
	lim.MaxBytes = int64(len(doc))
	if _, err := LoadLimited(strings.NewReader(doc), lim); err != nil {
		t.Fatalf("exactly-at-the-cap input rejected: %v", err)
	}
}

// TestLoadLimitedCountCaps: every collection ceiling rejects with a
// path-qualified message naming the offending collection.
func TestLoadLimitedCountCaps(t *testing.T) {
	small := Limits{MaxProcs: 2, MaxJobs: 2, MaxSubjobs: 2, MaxReleases: 3, MaxCriticalSections: 1}
	cases := []struct {
		name     string
		doc      string
		wantPath string
	}{
		{"procs", limitDoc(3, 1, 1, 1, 0), "processors"},
		{"jobs", limitDoc(1, 3, 1, 1, 0), "jobs"},
		{"subjobs", limitDoc(1, 2, 3, 1, 0), "jobs[0].subjobs"},
		{"releases", limitDoc(1, 2, 1, 4, 0), "jobs[0].releases"},
		{"critical sections", limitDoc(1, 1, 2, 1, 2), "jobs[0].subjobs[0].criticalSections"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadLimited(strings.NewReader(tc.doc), small)
			if err == nil {
				t.Fatal("oversized document accepted")
			}
			if !strings.Contains(err.Error(), "model: "+tc.wantPath+":") ||
				!strings.Contains(err.Error(), "exceed the limit") {
				t.Fatalf("err = %v, want a limit error at path %q", err, tc.wantPath)
			}
		})
	}
	// Unlimited (zero) fields accept the same documents.
	for _, tc := range cases {
		if _, err := LoadLimited(strings.NewReader(tc.doc), Limits{}); err != nil {
			t.Fatalf("%s: unlimited load failed: %v", tc.name, err)
		}
	}
}

// TestUnmarshalEnforcesDefaultLimits: the json.Unmarshal path applies
// DefaultLimits too, so no decoding route bypasses the ceilings.
func TestUnmarshalEnforcesDefaultLimits(t *testing.T) {
	doc := limitDoc(1, 1, DefaultLimits.MaxSubjobs+1, 1, 0)
	var sys System
	err := sys.UnmarshalJSON([]byte(doc))
	if err == nil || !strings.Contains(err.Error(), "jobs[0].subjobs") {
		t.Fatalf("err = %v, want the subjobs limit error", err)
	}
}
