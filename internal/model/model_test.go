package model

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func validSystem() *System {
	return &System{
		Procs: []Processor{{Name: "P1", Sched: SPP}, {Name: "P2", Sched: FCFS}},
		Jobs: []Job{
			{Name: "T1", Deadline: 100, Subjobs: []Subjob{
				{Proc: 0, Exec: 5, Priority: 1},
				{Proc: 1, Exec: 3, Priority: 0},
			}, Releases: []Ticks{0, 10, 10, 25}},
			{Name: "T2", Deadline: 50, Subjobs: []Subjob{
				{Proc: 1, Exec: 7, Priority: 2},
			}, Releases: []Ticks{5}},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validSystem().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*System)
		want   string
	}{
		{"no processors", func(s *System) { s.Procs = nil }, "no processors"},
		{"no jobs", func(s *System) { s.Jobs = nil }, "no jobs"},
		{"no subjobs", func(s *System) { s.Jobs[0].Subjobs = nil }, "no subjobs"},
		{"bad deadline", func(s *System) { s.Jobs[0].Deadline = 0 }, "deadline"},
		{"bad proc", func(s *System) { s.Jobs[0].Subjobs[0].Proc = 9 }, "processor"},
		{"bad exec", func(s *System) { s.Jobs[0].Subjobs[0].Exec = 0 }, "execution time"},
		{"no releases", func(s *System) { s.Jobs[1].Releases = nil }, "no release"},
		{"negative release", func(s *System) { s.Jobs[0].Releases[0] = -1 }, "negative"},
		{"unsorted releases", func(s *System) { s.Jobs[0].Releases[3] = 1 }, "not sorted"},
	}
	for _, tc := range cases {
		s := validSystem()
		tc.mutate(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := validSystem()
	var buf bytes.Buffer
	if err := Dump(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Procs) != 2 || got.Procs[1].Sched != FCFS {
		t.Fatalf("processors mangled: %+v", got.Procs)
	}
	if len(got.Jobs) != 2 || got.Jobs[0].Subjobs[0].Exec != 5 {
		t.Fatalf("jobs mangled: %+v", got.Jobs)
	}
	if got.Jobs[0].Releases[2] != 10 {
		t.Fatalf("releases mangled: %v", got.Jobs[0].Releases)
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	_, err := Load(strings.NewReader(`{"processors":[{"scheduler":"SPP"}],"jobs":[]}`))
	if err == nil {
		t.Fatal("want validation error for empty job list")
	}
	_, err = Load(strings.NewReader(`{"processors":[{"scheduler":"WFQ"}],"jobs":[]}`))
	if err == nil || !strings.Contains(err.Error(), "unknown scheduler") {
		t.Fatalf("err = %v, want unknown scheduler", err)
	}
}

func TestByPriorityAndBlocking(t *testing.T) {
	s := validSystem()
	refs := s.ByPriority(1)
	// P2 hosts T1 hop 2 (prio 0) and T2 hop 1 (prio 2).
	if len(refs) != 2 || refs[0] != (SubjobRef{0, 1}) || refs[1] != (SubjobRef{1, 0}) {
		t.Fatalf("ByPriority = %v", refs)
	}
	if b := s.Blocking(SubjobRef{0, 1}); b != 7 {
		t.Errorf("Blocking(T1,2) = %d, want 7", b)
	}
	if b := s.Blocking(SubjobRef{1, 0}); b != 0 {
		t.Errorf("Blocking(T2,1) = %d, want 0 (lowest priority)", b)
	}
}

func TestRevisits(t *testing.T) {
	s := validSystem()
	if s.Revisits() {
		t.Error("valid system should not revisit")
	}
	s.Jobs[0].Subjobs = append(s.Jobs[0].Subjobs, Subjob{Proc: 0, Exec: 1})
	if !s.Revisits() {
		t.Error("revisit not detected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := validSystem()
	c := s.Clone()
	c.Jobs[0].Releases[0] = 999
	c.Jobs[0].Subjobs[0].Exec = 999
	c.Procs[0].Sched = FCFS
	if s.Jobs[0].Releases[0] == 999 || s.Jobs[0].Subjobs[0].Exec == 999 || s.Procs[0].Sched == FCFS {
		t.Error("Clone shares memory with the original")
	}
}

func TestNamesAndHelpers(t *testing.T) {
	s := validSystem()
	if s.JobName(0) != "T1" || s.ProcName(1) != "P2" {
		t.Error("explicit names not used")
	}
	s.Jobs[0].Name = ""
	s.Procs[0].Name = ""
	if s.JobName(0) != "T1" || s.ProcName(0) != "P1" {
		t.Error("default names wrong")
	}
	if s.MaxRelease() != 25 {
		t.Errorf("MaxRelease = %d, want 25", s.MaxRelease())
	}
	// TotalWork on P2: T1 hop2 (3x4 releases) + T2 (7x1).
	if w := s.TotalWork(1); w != 19 {
		t.Errorf("TotalWork(P2) = %d, want 19", w)
	}
	if got := (SubjobRef{1, 0}).String(); got != "T_{2,1}" {
		t.Errorf("SubjobRef.String = %q", got)
	}
	if SPNP.String() != "SPNP" {
		t.Errorf("Scheduler.String = %q", SPNP.String())
	}
	if _, err := ParseScheduler("nope"); err == nil {
		t.Error("ParseScheduler accepted junk")
	}
}

func TestSummaryHelpers(t *testing.T) {
	s := validSystem()
	if n := s.InstanceCount(); n != 5 {
		t.Errorf("InstanceCount = %d, want 5", n)
	}
	if n := s.SubjobCount(); n != 3 {
		t.Errorf("SubjobCount = %d, want 3", n)
	}
	if u := s.TraceUtilization(1); u <= 0 {
		t.Errorf("TraceUtilization = %v, want positive", u)
	}
	str := s.String()
	for _, want := range []string{"1 SPP", "1 FCFS", "2 jobs", "3 subjobs", "5 instances"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

func TestValidateJob(t *testing.T) {
	sys := validSystem()
	good := Job{Name: "T3", Deadline: 40, Subjobs: []Subjob{{Proc: 0, Exec: 2}}, Releases: []Ticks{0}}
	if err := sys.ValidateJob(&good); err != nil {
		t.Fatalf("valid candidate rejected: %v", err)
	}
	cases := []struct {
		name string
		job  Job
		want string
	}{
		{"processor out of range",
			Job{Name: "x", Deadline: 10, Subjobs: []Subjob{{Proc: 99, Exec: 1}}, Releases: []Ticks{0}},
			"references processor 99"},
		{"no releases",
			Job{Name: "x", Deadline: 10, Subjobs: []Subjob{{Proc: 0, Exec: 1}}},
			"no release instances"},
		{"bad critical section",
			Job{Name: "x", Deadline: 10, Subjobs: []Subjob{{Proc: 0, Exec: 1,
				CS: []CriticalSection{{Resource: -1, Start: 0, Duration: 1}}}}, Releases: []Ticks{0}},
			"negative resource"},
	}
	for _, tc := range cases {
		err := sys.ValidateJob(&tc.job)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want %q", tc.name, err, tc.want)
		}
		var verr *ValidationError
		if !errors.As(err, &verr) {
			t.Errorf("%s: error %v is not a *ValidationError", tc.name, err)
		}
	}
	// Cross-job locality: resource 7 lives on P1 of the resident system.
	sys.Jobs[0].Subjobs[0].CS = []CriticalSection{{Resource: 7, Start: 0, Duration: 1}}
	foreign := Job{Name: "x", Deadline: 10, Subjobs: []Subjob{{Proc: 1, Exec: 2,
		CS: []CriticalSection{{Resource: 7, Start: 0, Duration: 1}}}}, Releases: []Ticks{0}}
	if err := sys.ValidateJob(&foreign); err == nil || !strings.Contains(err.Error(), "must be local") {
		t.Errorf("cross-processor resource use: error = %v, want locality violation", err)
	}
}

func TestLoadSpecLimitedAllowsEmptyJobs(t *testing.T) {
	spec := `{"processors":[{"name":"P0","scheduler":"SPP"},{"scheduler":"FCFS"}]}`
	sys, err := LoadSpecLimited(strings.NewReader(spec), DefaultLimits)
	if err != nil {
		t.Fatalf("LoadSpecLimited: %v", err)
	}
	if len(sys.Procs) != 2 || len(sys.Jobs) != 0 {
		t.Fatalf("spec = %d procs %d jobs, want 2 procs 0 jobs", len(sys.Procs), len(sys.Jobs))
	}
	if _, err := LoadLimited(strings.NewReader(spec), DefaultLimits); err == nil {
		t.Fatal("LoadLimited accepted a jobs-free document; the spec loader must stay the only relaxed path")
	}
}

func TestJobMarshalRoundTrip(t *testing.T) {
	in := Job{Name: "T9", Deadline: 77, Subjobs: []Subjob{
		{Proc: 1, Exec: 9, Priority: 3, PostDelay: 2,
			CS: []CriticalSection{{Resource: 4, Start: 1, Duration: 2}}},
	}, Releases: []Ticks{0, 5}}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := LoadJobLimited(bytes.NewReader(raw), DefaultLimits)
	if err != nil {
		t.Fatalf("round trip decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the job:\n in  %+v\n out %+v", in, out)
	}
}
