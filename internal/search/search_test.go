package search

import (
	"math/rand"
	"testing"

	"rta/internal/analysis"
	"rta/internal/curve"
	"rta/internal/envelope"
	"rta/internal/model"
	"rta/internal/spp"
)

// scenario builds a two-job single-SPNP-processor system whose worst
// case is NOT at the synchronous critical instant (non-preemptive
// blocking depends on phasing).
func scenario(sched model.Scheduler) (*model.System, []envelope.Envelope) {
	sys := &model.System{
		Procs: []model.Processor{{Sched: sched}},
		Jobs: []model.Job{
			{Name: "hi", Deadline: 1 << 30,
				Subjobs: []model.Subjob{{Proc: 0, Exec: 2, Priority: 0}}},
			{Name: "lo", Deadline: 1 << 30,
				Subjobs: []model.Subjob{{Proc: 0, Exec: 9, Priority: 1}}},
		},
	}
	envs := []envelope.Envelope{
		envelope.Periodic(20, 6),
		envelope.Periodic(30, 6),
	}
	// Placeholder releases so the system validates before search.
	sys.Jobs[0].Releases = envs[0].MaximalTrace(4)
	sys.Jobs[1].Releases = envs[1].MaximalTrace(4)
	return sys, envs
}

// TestFindsNonSynchronousWorstCaseSPNP: under SPNP the worst case for the
// high-priority job needs the blocker to start just before the release -
// a phasing the synchronous seed does not contain. The search must beat
// the critical-instant response.
func TestFindsNonSynchronousWorstCaseSPNP(t *testing.T) {
	sys, envs := scenario(model.SPNP)
	r := rand.New(rand.NewSource(5))
	res := WorstResponse(sys, envs, 4, 0, Options{Rounds: 400, Rand: r})
	// Synchronous: both release at 0; priority order serves hi first:
	// response 2. Worst case: lo starts at t-1, hi released at t:
	// response 2+8 = 10.
	if res.Best < 10 {
		t.Fatalf("search found %d, want >= 10 (blocking phasing)", res.Best)
	}
	// And the Theorem 4 bound on any found trace must still dominate.
	work := sys.Clone()
	for k := range work.Jobs {
		work.Jobs[k].Releases = res.Traces[k]
	}
	bound, err := analysis.Approximate(work)
	if err != nil {
		t.Fatal(err)
	}
	if !curve.IsInf(bound.WCRT[0]) && bound.WCRT[0] < res.Best {
		t.Fatalf("soundness counterexample: bound %d < found %d", bound.WCRT[0], res.Best)
	}
}

// TestSearchNeverBeatsExactBoundSPP: for preemptive priorities the
// critical instant is the worst case; the search (which only delays
// releases relative to it) must never exceed the synchronous response.
func TestSearchNeverBeatsExactBoundSPP(t *testing.T) {
	sys, envs := scenario(model.SPP)
	sync := sys.Clone()
	exact, err := spp.Analyze(sync)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(6))
	res := WorstResponse(sys, envs, 4, 0, Options{Rounds: 300, Rand: r})
	if res.Best > exact.WCRT[0] {
		t.Fatalf("search %d beats the critical-instant exact value %d on SPP", res.Best, exact.WCRT[0])
	}
	if res.Evaluations < 100 {
		t.Fatalf("suspiciously few evaluations: %d", res.Evaluations)
	}
}

// TestFoundTracesAreConsistent: every reported trace satisfies its
// envelope and has the requested instance count.
func TestFoundTracesAreConsistent(t *testing.T) {
	sys, envs := scenario(model.FCFS)
	r := rand.New(rand.NewSource(7))
	res := WorstResponse(sys, envs, 5, 1, Options{Rounds: 150, Rand: r})
	for k, tr := range res.Traces {
		if len(tr) != 5 {
			t.Fatalf("job %d trace has %d instances, want 5", k, len(tr))
		}
		if !envs[k].Admits(tr) {
			t.Fatalf("job %d trace violates its envelope: %v", k, tr)
		}
	}
}
