// Package search hunts for bad release traces by simulation: within
// given arrival envelopes, it perturbs traces with randomized
// hill-climbing to maximize a job's observed end-to-end response. Two
// uses:
//
//   - measuring how tight the critical-instant heuristic is for
//     schedulers where it is not proven worst-case (SPNP, FCFS): the
//     search provides a lower bound on the true worst case to hold
//     against the analysis bound;
//   - regression-hunting: a found trace whose response exceeds an
//     analysis bound is a soundness counterexample (the property tests
//     assert this never happens).
package search

import (
	"math/rand"

	"rta/internal/envelope"
	"rta/internal/model"
	"rta/internal/sim"
)

// Options tune the search.
type Options struct {
	// Rounds of hill climbing (restarts included); default 200.
	Rounds int
	// Restarts from a fresh random trace every this many non-improving
	// rounds; default 25.
	RestartAfter int
	// MaxShift bounds the per-mutation time perturbation; default 16.
	MaxShift model.Ticks
	// Rand is the randomness source (required).
	Rand *rand.Rand
}

// Result reports what the search found.
type Result struct {
	// Best is the largest observed end-to-end response of the target job.
	Best model.Ticks
	// Traces are the release traces achieving Best (per job).
	Traces [][]model.Ticks
	// Evaluations is the number of simulations run.
	Evaluations int
}

// WorstResponse searches for release traces - one per job, each
// consistent with its envelope and of the given instance count - that
// maximize job `target`'s worst observed end-to-end response. The
// system's Releases fields are ignored and replaced per evaluation.
func WorstResponse(sys *model.System, envs []envelope.Envelope, instances int, target int, opts Options) *Result {
	if opts.Rounds <= 0 {
		opts.Rounds = 200
	}
	if opts.RestartAfter <= 0 {
		opts.RestartAfter = 25
	}
	if opts.MaxShift <= 0 {
		opts.MaxShift = 16
	}
	r := opts.Rand
	if r == nil {
		panic("search: Options.Rand is required for reproducibility")
	}

	work := sys.Clone()
	evalTrace := func(traces [][]model.Ticks) model.Ticks {
		for k := range work.Jobs {
			work.Jobs[k].Releases = traces[k]
		}
		return sim.Run(work).WorstResponse(target)
	}
	freshTraces := func() [][]model.Ticks {
		out := make([][]model.Ticks, len(sys.Jobs))
		for k := range out {
			// Start from the critical instant - the strongest known seed.
			out[k] = envs[k].MaximalTrace(instances)
		}
		return out
	}
	cloneTraces := func(ts [][]model.Ticks) [][]model.Ticks {
		out := make([][]model.Ticks, len(ts))
		for k := range ts {
			out[k] = append([]model.Ticks(nil), ts[k]...)
		}
		return out
	}

	cur := freshTraces()
	res := &Result{Best: evalTrace(cur), Traces: cloneTraces(cur)}
	res.Evaluations++
	stale := 0
	for round := 0; round < opts.Rounds; round++ {
		cand := cloneTraces(cur)
		// Mutate: delay a random suffix of one job's trace (delays keep
		// any minimum-distance envelope satisfied).
		k := r.Intn(len(cand))
		if len(cand[k]) == 0 {
			continue
		}
		from := r.Intn(len(cand[k]))
		delta := 1 + model.Ticks(r.Int63n(int64(opts.MaxShift)))
		for i := from; i < len(cand[k]); i++ {
			cand[k][i] += delta
		}
		got := evalTrace(cand)
		res.Evaluations++
		if got > res.Best {
			res.Best = got
			res.Traces = cloneTraces(cand)
			cur = cand
			stale = 0
			continue
		}
		if got >= res.Best-1 {
			cur = cand // sideways moves escape plateaus
		}
		stale++
		if stale >= opts.RestartAfter {
			cur = freshTraces()
			// Random initial jitter after restart.
			for kk := range cur {
				shift := model.Ticks(r.Int63n(int64(opts.MaxShift)))
				for i := range cur[kk] {
					cur[kk][i] += shift
					shift += model.Ticks(r.Int63n(int64(opts.MaxShift)))
				}
			}
			if got := evalTrace(cur); got > res.Best {
				res.Best = got
				res.Traces = cloneTraces(cur)
			}
			res.Evaluations++
			stale = 0
		}
	}
	return res
}
