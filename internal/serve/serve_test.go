package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rta/internal/admission"
	"rta/internal/model"
)

const twoProcSpec = `{"processors":[{"name":"P0","scheduler":"SPP"},{"name":"P1","scheduler":"SPP"}]}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func doReq(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("building %s %s: %v", method, url, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s %s response: %v", method, url, err)
	}
	return resp.StatusCode, raw
}

func jobJSON(t *testing.T, name string, exec, deadline model.Ticks) []byte {
	t.Helper()
	j := model.Job{
		Name:     name,
		Deadline: deadline,
		Subjobs:  []model.Subjob{{Proc: 0, Exec: exec, Priority: 1}},
		Releases: []model.Ticks{0},
	}
	raw, err := json.Marshal(j)
	if err != nil {
		t.Fatalf("marshaling job: %v", err)
	}
	return raw
}

func createTenant(t *testing.T, base, id string) {
	t.Helper()
	status, body := doReq(t, http.MethodPut, base+"/v1/tenants/"+id, []byte(twoProcSpec))
	if status != http.StatusCreated {
		t.Fatalf("creating tenant %s: status %d: %s", id, status, body)
	}
}

func TestServerLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Policy: admission.DeadlineMonotonic})
	createTenant(t, ts.URL, "acme")

	// A light job is admitted.
	status, raw := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/admit", jobJSON(t, "light", 100, 10_000))
	var adm admitResponse
	if status != http.StatusOK || json.Unmarshal(raw, &adm) != nil {
		t.Fatalf("admit: status %d: %s", status, raw)
	}
	if !adm.Admitted || adm.Jobs != 1 {
		t.Fatalf("admit = %+v, want admitted with 1 job", adm)
	}

	// Re-admitting the same name is a conflict, not a decision.
	status, raw = doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/admit", jobJSON(t, "light", 100, 10_000))
	if status != http.StatusConflict {
		t.Fatalf("duplicate admit: status %d: %s, want 409", status, raw)
	}

	// A job that cannot meet its deadline is refused — 200 with
	// admitted=false, since the test ran and answered.
	status, raw = doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/admit", jobJSON(t, "heavy", 5_000, 200))
	if status != http.StatusOK || json.Unmarshal(raw, &adm) != nil {
		t.Fatalf("denied admit: status %d: %s", status, raw)
	}
	if adm.Admitted || adm.Jobs != 1 {
		t.Fatalf("denied admit = %+v, want refusal with 1 job resident", adm)
	}

	// Bounds list the admitted job with a certified positive bound.
	status, raw = doReq(t, http.MethodGet, ts.URL+"/v1/tenants/acme/bounds", nil)
	var bounds boundsResponse
	if status != http.StatusOK || json.Unmarshal(raw, &bounds) != nil {
		t.Fatalf("bounds: status %d: %s", status, raw)
	}
	if len(bounds.Jobs) != 1 || bounds.Jobs[0].Name != "light" || bounds.Jobs[0].Bound < 100 {
		t.Fatalf("bounds = %+v, want light with bound >= 100", bounds.Jobs)
	}

	// Removal frees the job; removing again reports absent.
	rm, _ := json.Marshal(removeRequest{Name: "light"})
	status, raw = doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/remove", rm)
	var rmResp removeResponse
	if status != http.StatusOK || json.Unmarshal(raw, &rmResp) != nil || !rmResp.Removed {
		t.Fatalf("remove: status %d: %s", status, raw)
	}
	status, raw = doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/remove", rm)
	if status != http.StatusOK || json.Unmarshal(raw, &rmResp) != nil || rmResp.Removed {
		t.Fatalf("second remove: status %d: %s, want removed=false", status, raw)
	}

	// Stats reflect the traffic.
	status, raw = doReq(t, http.MethodGet, ts.URL+"/stats", nil)
	var stats StatsSnapshot
	if status != http.StatusOK || json.Unmarshal(raw, &stats) != nil {
		t.Fatalf("stats: status %d: %s", status, raw)
	}
	if stats.AdmitsGranted != 1 || stats.AdmitsDenied != 1 || stats.Removes != 1 || stats.Queries != 1 {
		t.Fatalf("stats = %+v, want 1 grant, 1 denial, 1 remove, 1 query", stats)
	}
	if stats.Tenants != 1 || stats.AdmittedJobs != 0 {
		t.Fatalf("stats = %+v, want 1 tenant with 0 resident jobs", stats)
	}
	// Every serviced decision attempt is observed: grant, duplicate
	// conflict, denial, and both removals.
	if stats.DecisionCount != 5 || stats.DecisionP99Ns == 0 {
		t.Fatalf("stats decisions = %d (p99 %d), want 5 observed decisions", stats.DecisionCount, stats.DecisionP99Ns)
	}

	// Dropping the tenant invalidates its routes.
	status, _ = doReq(t, http.MethodDelete, ts.URL+"/v1/tenants/acme", nil)
	if status != http.StatusOK {
		t.Fatalf("drop: status %d", status)
	}
	status, _ = doReq(t, http.MethodGet, ts.URL+"/v1/tenants/acme/bounds", nil)
	if status != http.StatusNotFound {
		t.Fatalf("bounds after drop: status %d, want 404", status)
	}
}

func TestServerCreateValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxTenants: 1})

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", `{"processors": [`, http.StatusBadRequest},
		{"carries jobs", `{"processors":[{"scheduler":"SPP"}],"jobs":[{"deadline":1,"subjobs":[{"proc":0,"exec":1}],"releases":[0]}]}`, http.StatusBadRequest},
		{"no processors", `{"processors":[]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, body := doReq(t, http.MethodPut, ts.URL+"/v1/tenants/bad", []byte(tc.body))
		if status != tc.want {
			t.Errorf("%s: status %d: %s, want %d", tc.name, status, body, tc.want)
		}
	}

	createTenant(t, ts.URL, "only")
	status, body := doReq(t, http.MethodPut, ts.URL+"/v1/tenants/only", []byte(twoProcSpec))
	if status != http.StatusConflict {
		t.Errorf("duplicate tenant: status %d: %s, want 409", status, body)
	}
	status, body = doReq(t, http.MethodPut, ts.URL+"/v1/tenants/second", []byte(twoProcSpec))
	if status != http.StatusTooManyRequests {
		t.Errorf("over tenant limit: status %d: %s, want 429", status, body)
	}
}

func TestServerDecisionErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createTenant(t, ts.URL, "acme")

	status, body := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/ghost/admit", jobJSON(t, "j", 1, 10))
	if status != http.StatusNotFound {
		t.Errorf("unknown tenant: status %d: %s, want 404", status, body)
	}
	status, body = doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/admit", []byte(`{"subjobs": 3}`))
	if status != http.StatusBadRequest {
		t.Errorf("malformed job: status %d: %s, want 400", status, body)
	}
	status, body = doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/remove", []byte(`{}`))
	if status != http.StatusBadRequest {
		t.Errorf("nameless removal: status %d: %s, want 400", status, body)
	}
	// A structurally valid job the analysis itself must reject (processor
	// out of range) maps to 400, not 500: the client's fault.
	status, body = doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/admit",
		[]byte(`{"name":"oob","deadline":10,"subjobs":[{"proc":99,"exec":1}],"releases":[0]}`))
	if status != http.StatusBadRequest {
		t.Errorf("out-of-range proc: status %d: %s, want 400", status, body)
	}
}

// frozenBucket returns a TokenBucket pinned to a fixed clock: no refill
// ever happens, so exactly capacity decisions pass.
func frozenBucket(capacity float64) *TokenBucket {
	b := NewTokenBucket(capacity, 1)
	t0 := time.Unix(0, 0)
	b.now = func() time.Time { return t0 }
	b.last = t0
	return b
}

func TestTokenBucketSheds(t *testing.T) {
	_, ts := newTestServer(t, Config{Overload: frozenBucket(2)})
	createTenant(t, ts.URL, "acme")

	for i := 0; i < 2; i++ {
		status, body := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/admit",
			jobJSON(t, fmt.Sprintf("j%d", i), 10, 10_000))
		if status != http.StatusOK {
			t.Fatalf("decision %d within budget: status %d: %s", i, status, body)
		}
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/tenants/acme/admit", bytes.NewReader(jobJSON(t, "j2", 10, 10_000)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("exhausted bucket: status %d: %s, want 429", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response lacks Retry-After")
	}
	if !strings.Contains(string(raw), "token-bucket") {
		t.Errorf("shed body %q does not name the policy", raw)
	}

	// Queries are never shed: they serve resident state.
	status, body := doReq(t, http.MethodGet, ts.URL+"/v1/tenants/acme/bounds", nil)
	if status != http.StatusOK {
		t.Fatalf("query under exhausted bucket: status %d: %s, want 200", status, body)
	}
}

func TestTokenBucketRefill(t *testing.T) {
	b := NewTokenBucket(3, 2) // burst 3, then 2/s sustained
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	b.last = now

	for i := 0; i < 3; i++ {
		if !b.Admit() {
			t.Fatalf("burst decision %d shed with a full bucket", i)
		}
	}
	if b.Admit() {
		t.Fatal("empty bucket admitted without refill")
	}
	now = now.Add(500 * time.Millisecond) // +1 token
	if !b.Admit() {
		t.Fatal("refilled token not granted")
	}
	if b.Admit() {
		t.Fatal("second decision granted after a one-token refill")
	}
	now = now.Add(time.Hour) // refill far beyond capacity
	for i := 0; i < 3; i++ {
		if !b.Admit() {
			t.Fatalf("decision %d shed after refill to capacity", i)
		}
	}
	if b.Admit() {
		t.Fatal("refill exceeded capacity")
	}
}

// TestServerConcurrentTenants hammers several tenants through the mux at
// once — decisions, removals, queries, and stats — so the race detector
// sees cross-shard parallelism against the shared shard map and counters.
func TestServerConcurrentTenants(t *testing.T) {
	_, ts := newTestServer(t, Config{Policy: admission.DeadlineMonotonic})

	const tenants = 4
	const opsPerTenant = 30
	for i := 0; i < tenants; i++ {
		createTenant(t, ts.URL, fmt.Sprintf("t%d", i))
	}

	var wg sync.WaitGroup
	errs := make(chan error, tenants+1)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for op := 0; op < opsPerTenant; op++ {
				name := fmt.Sprintf("j%d", op%5)
				body := jobJSON(t, name, 50, 100_000)
				req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/tenants/"+id+"/admit", bytes.NewReader(body))
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					errs <- fmt.Errorf("%s admit %s: status %d", id, name, resp.StatusCode)
					return
				}
				if op%3 == 0 {
					rm, _ := json.Marshal(removeRequest{Name: name})
					req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/tenants/"+id+"/remove", bytes.NewReader(rm))
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				resp, err = http.Get(ts.URL + "/v1/tenants/" + id + "/bounds")
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(fmt.Sprintf("t%d", i))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < opsPerTenant; i++ {
			resp, err := http.Get(ts.URL + "/stats")
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRunLoadRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Policy: admission.DeadlineMonotonic})

	cfg := LoadConfig{
		Seed:          7,
		Tenants:       2,
		Duration:      300 * time.Millisecond,
		RatePerTenant: 300,
		CV:            4,
		PoolJobs:      6,
		BurstSize:     3,
	}
	res, err := RunLoad(context.Background(), cfg, ts.URL, "always-admit", nil)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Offered == 0 || res.Admits == 0 {
		t.Fatalf("result = %+v, want offered and admitted traffic", res)
	}
	if res.Errors != 0 {
		t.Fatalf("result has %d errors, samples %v", res.Errors, res.ErrorSamples)
	}
	if res.Sheds != 0 || res.ShedRate != 0 {
		t.Fatalf("always-admit run shed %d requests", res.Sheds)
	}
	if res.DecisionP99Ms < res.DecisionP50Ms || res.Throughput <= 0 {
		t.Fatalf("result quantiles inconsistent: %+v", res)
	}
	if res.Policy != "always-admit" {
		t.Fatalf("policy label = %q", res.Policy)
	}
}

func TestRunLoadShedsUnderTokenBucket(t *testing.T) {
	// A bucket refilling far below the offered rate must shed: this is
	// the degenerate always-reject regime the load test exists to expose.
	_, ts := newTestServer(t, Config{
		Policy:   admission.DeadlineMonotonic,
		Overload: NewTokenBucket(5, 10),
	})
	cfg := LoadConfig{
		Seed:          7,
		Tenants:       2,
		Duration:      300 * time.Millisecond,
		RatePerTenant: 400,
		CV:            4,
		PoolJobs:      6,
		BurstSize:     3,
	}
	res, err := RunLoad(context.Background(), cfg, ts.URL, "token-bucket", nil)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("result has %d errors, samples %v", res.Errors, res.ErrorSamples)
	}
	if res.Sheds == 0 || res.ShedRate <= 0 {
		t.Fatalf("starved bucket shed nothing: %+v", res)
	}
}
