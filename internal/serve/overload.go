package serve

import (
	"fmt"
	"sync"
	"time"
)

// Overload decides, before any session work, whether a decision request
// may proceed. A false verdict sheds the request with 429 — the point of
// shedding before the shard lock is that an overloaded server keeps its
// admission sessions responsive for the traffic it does accept, instead
// of queueing everything into the lock and letting tail latency grow
// without bound (the H5 token-bucket study's shed-vs-serve tradeoff).
//
// Implementations must be safe for concurrent use: every decision request
// on every shard consults the same policy instance.
type Overload interface {
	// Admit reports whether this decision request may proceed.
	Admit() bool
	// Name identifies the policy in /stats and load-test reports.
	Name() string
}

// AlwaysAdmit never sheds: every decision request reaches its shard. The
// baseline policy of the load-test comparison.
type AlwaysAdmit struct{}

// Admit always reports true.
func (AlwaysAdmit) Admit() bool { return true }

// Name returns "always-admit".
func (AlwaysAdmit) Name() string { return "always-admit" }

// TokenBucket sheds decision requests beyond a sustained rate with
// bounded burst tolerance: a bucket holding up to Capacity tokens refills
// at Refill tokens per second, and each decision costs one token. The
// cost model is deliberately one-token-per-decision — the H5 study's
// lesson is that an uncalibrated per-item cost model turns the bucket
// into a pure load shedder whose "win" is rejecting the workload, so the
// serve layer keeps cost uniform and the calibration surface to two
// documented knobs.
type TokenBucket struct {
	mu     sync.Mutex
	cap    float64
	refill float64 // tokens per second
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewTokenBucket creates a full bucket. capacity is the burst tolerance
// in decisions; refillPerSec the sustained decision rate.
func NewTokenBucket(capacity, refillPerSec float64) *TokenBucket {
	if capacity < 1 {
		capacity = 1
	}
	if refillPerSec <= 0 {
		refillPerSec = 1
	}
	b := &TokenBucket{cap: capacity, refill: refillPerSec, tokens: capacity, now: time.Now}
	b.last = b.now()
	return b
}

// Admit takes one token if available.
func (b *TokenBucket) Admit() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.refill
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Name returns the policy name with its calibration.
func (b *TokenBucket) Name() string {
	return fmt.Sprintf("token-bucket(cap=%g,refill=%g/s)", b.cap, b.refill)
}
