// Package serve is the online admission-control service over
// admission.Controller: the paper frames its whole analysis as an
// admission test for dynamic job sets, and this layer is what answers
// that test over HTTP, long-lived, under bursty query traffic.
//
// Architecture:
//
//   - Per-tenant sharding. Each tenant id owns an independent
//     admission.Controller (its own processors, job set, and warm
//     analysis session). The controller's internal lock serializes the
//     decisions of one shard; different shards decide in parallel — the
//     shard map itself is only read-locked on the request path.
//   - Shed before session. A pluggable Overload policy (always-admit or
//     token bucket) is consulted before a decision request touches its
//     shard; a shed costs a 429 and one atomic counter, never a session
//     lock. Queries (/bounds) are served from the resident converged
//     state and are not shed.
//   - Per-request execution options. Each decision runs under the HTTP
//     request's context plus the server's configured budget and worker
//     count (analysis.Options), so a disconnected client cancels its own
//     analysis and a poisoned request cannot run away.
//   - Graceful drain. Shutdown goes through http.Server.Shutdown, which
//     stops accepting and waits for in-flight decisions; sessions need no
//     special teardown because every commit point is transactional
//     (see the admission controller's rollback-on-error paths).
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rta/internal/admission"
	"rta/internal/analysis"
	"rta/internal/fault"
	"rta/internal/model"
	"rta/internal/store"
)

// Config parameterizes a Server.
type Config struct {
	// Limits caps tenant-spec and job request bodies (model.LoadLimited /
	// model.LoadJobLimited). Zero-value fields fall back to
	// model.DefaultLimits.
	Limits model.Limits
	// Policy is the priority-maintenance policy of every tenant
	// controller.
	Policy admission.PriorityPolicy
	// Opts are the per-decision execution options (workers, budget); the
	// request context is layered on per call.
	Opts analysis.Options
	// Overload is the shed policy; nil means AlwaysAdmit.
	Overload Overload
	// MaxTenants caps the number of concurrent tenants; 0 means 64.
	MaxTenants int
	// Store, when non-nil, makes every committed mutation durable: tenant
	// creations, drops, admissions, removals, and updates are logged
	// after their session commit and before the HTTP acknowledgment, and
	// New replays the store's recovered tenants before serving. Store
	// errors degrade durability, never availability (see persist.go).
	Store *store.Store
	// TenantTTL evicts tenants idle (no create/admit/remove/update/bounds
	// traffic) longer than this; zero disables eviction. Evictions are
	// logged to the store as drops, so a restart does not resurrect them.
	TenantTTL time.Duration
	// Now overrides the clock for TTL bookkeeping; nil means time.Now.
	Now func() time.Time
}

// Server is the admission-control service. Create with New, mount
// Handler on an http.Server.
type Server struct {
	cfg      Config
	overload Overload

	mu      sync.RWMutex
	tenants map[string]*tenant

	started  time.Time
	counters counters
	decHist  hist

	// persist is the durability glue (nil without a Store); see persist.go.
	persist *persister
	// recoveryNotes records per-tenant semantic replay failures from New.
	recoveryNotes []string
	// janitorStop ends the TTL janitor; closeOnce guards double Close.
	janitorStop chan struct{}
	closeOnce   sync.Once
}

type tenant struct {
	ctl *admission.Controller
	// spec is the canonical processors-only spec JSON the tenant was
	// created from, kept for snapshots.
	spec json.RawMessage
	// logMu is held across "commit the decision" + "append to the WAL",
	// making the log's operation order the commit order.
	logMu sync.Mutex
	// lastUsed is the UnixNano of the last request that touched the
	// tenant, for TTL eviction.
	lastUsed int64
}

func (t *tenant) touch(now int64) { atomic.StoreInt64(&t.lastUsed, now) }

// New creates a server. Without a Store it starts empty; with one it
// replays every recovered tenant (quarantining any whose log does not
// apply — see Recovery) before it is ready to serve.
func New(cfg Config) *Server {
	if cfg.Overload == nil {
		cfg.Overload = AlwaysAdmit{}
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 64
	}
	if cfg.Limits == (model.Limits{}) {
		cfg.Limits = model.DefaultLimits
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Server{
		cfg:      cfg,
		overload: cfg.Overload,
		tenants:  map[string]*tenant{},
		started:  time.Now(),
	}
	if cfg.Store != nil {
		s.persist = newPersister(cfg.Store)
		s.replayAll()
	}
	if cfg.TenantTTL > 0 {
		s.janitorStop = make(chan struct{})
		go s.janitor()
	}
	return s
}

func (s *Server) now() time.Time { return s.cfg.Now() }

// Close stops the background goroutines (TTL janitor, store retry
// loop). It does not close the store itself — the store's owner does.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.janitorStop != nil {
			close(s.janitorStop)
		}
		s.persist.close()
	})
}

// Recovery reports the semantic replay failures New quarantined (framing
// -level recovery accounting lives in the store's own Report).
func (s *Server) Recovery() []string { return s.recoveryNotes }

// janitor periodically evicts idle tenants; cadence is TenantTTL/4
// clamped to [50ms, 30s].
func (s *Server) janitor() {
	period := s.cfg.TenantTTL / 4
	if period < 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	if period > 30*time.Second {
		period = 30 * time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-tick.C:
			s.evictIdle()
		}
	}
}

// evictIdle drops every tenant idle longer than TenantTTL, logging each
// eviction to the store as a drop so restarts do not resurrect them.
// Like handleDrop, the OpDrop is appended while the id is still in the
// map (under the tenant's logMu), so a concurrent re-create of the same
// id cannot get its OpCreate into the store first.
func (s *Server) evictIdle() {
	deadline := s.now().Add(-s.cfg.TenantTTL).UnixNano()
	candidates := map[string]*tenant{}
	s.mu.RLock()
	for id, t := range s.tenants {
		if atomic.LoadInt64(&t.lastUsed) <= deadline {
			candidates[id] = t
		}
	}
	s.mu.RUnlock()
	for id, t := range candidates {
		t.logMu.Lock()
		s.mu.Lock()
		// Re-check under the locks: the tenant may have been dropped, or
		// touched back to life, while we waited for its logMu.
		if s.tenants[id] != t || atomic.LoadInt64(&t.lastUsed) > deadline {
			s.mu.Unlock()
			t.logMu.Unlock()
			continue
		}
		s.mu.Unlock()
		if s.persist != nil {
			s.persist.log(id, store.Op{Kind: store.OpDrop, Evicted: true})
		}
		s.mu.Lock()
		delete(s.tenants, id)
		s.mu.Unlock()
		t.logMu.Unlock()
		s.counters.evictions.Add(1)
	}
}

// Handler returns the HTTP API:
//
//	PUT    /v1/tenants/{tenant}         create a tenant from a processor spec
//	DELETE /v1/tenants/{tenant}         drop a tenant and its job set
//	POST   /v1/tenants/{tenant}/admit   admission decision for one job
//	POST   /v1/tenants/{tenant}/remove  remove an admitted job by name
//	GET    /v1/tenants/{tenant}/bounds  per-job response bounds
//	GET    /healthz                     liveness
//	GET    /stats                       counters + decision-latency histogram
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/tenants/{tenant}", s.handleCreate)
	mux.HandleFunc("DELETE /v1/tenants/{tenant}", s.handleDrop)
	mux.HandleFunc("POST /v1/tenants/{tenant}/admit", s.handleAdmit)
	mux.HandleFunc("POST /v1/tenants/{tenant}/remove", s.handleRemove)
	mux.HandleFunc("POST /v1/tenants/{tenant}/update", s.handleUpdate)
	mux.HandleFunc("GET /v1/tenants/{tenant}/bounds", s.handleBounds)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.persist.degraded() {
			// Still 200: the server is live and serving from memory; the
			// body tells the orchestrator durability is behind.
			fmt.Fprintln(w, "degraded")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// errorDoc is the JSON error body.
type errorDoc struct {
	Error string `json:"error"`
}

func (s *Server) reply(w http.ResponseWriter, status int, doc any) {
	if status >= 500 {
		s.counters.serverErrors.Add(1)
	} else if status >= 400 && status != http.StatusTooManyRequests {
		s.counters.clientErrors.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(doc)
}

func (s *Server) replyErr(w http.ResponseWriter, status int, format string, args ...any) {
	s.reply(w, status, errorDoc{Error: fmt.Sprintf(format, args...)})
}

// shard returns the tenant's shard, or nil after writing a 404. A hit
// refreshes the tenant's TTL clock.
func (s *Server) shard(w http.ResponseWriter, r *http.Request) *tenant {
	id := r.PathValue("tenant")
	s.mu.RLock()
	t := s.tenants[id]
	s.mu.RUnlock()
	if t == nil {
		s.replyErr(w, http.StatusNotFound, "unknown tenant %q", id)
		return nil
	}
	t.touch(s.now().UnixNano())
	return t
}

// shed consults the overload policy; on a shed it writes the 429 and
// reports true. Decisions only — this runs before any shard state is
// touched.
func (s *Server) shed(w http.ResponseWriter) bool {
	if s.overload.Admit() {
		return false
	}
	s.counters.sheds.Add(1)
	w.Header().Set("Retry-After", "1")
	s.replyErr(w, http.StatusTooManyRequests, "shed by overload policy %s", s.overload.Name())
	return true
}

// decisionOpts binds the request context to the configured execution
// options for one decision.
func (s *Server) decisionOpts(r *http.Request) analysis.Options {
	opts := s.cfg.Opts
	opts.Context = r.Context()
	return opts
}

// handleCreate builds a tenant shard from a processor spec: a system
// document whose jobs array must be empty (jobs are admitted one by one
// through /admit, so every admitted job has passed the admission test).
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("tenant")
	if id == "" {
		s.replyErr(w, http.StatusBadRequest, "tenant id must be non-empty")
		return
	}
	// LoadProcSpec is the same validation replay runs, so a spec accepted
	// here is a spec the store can replay after a crash (and vice versa).
	spec, err := model.LoadProcSpec(r.Body, s.cfg.Limits)
	if err != nil {
		s.replyErr(w, http.StatusBadRequest, "tenant spec: %v", err)
		return
	}
	ctl, err := admission.NewWithOptions(spec.Procs, s.cfg.Policy, s.cfg.Opts)
	if err != nil {
		s.replyErr(w, http.StatusBadRequest, "tenant spec: %v", err)
		return
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		s.replyErr(w, http.StatusInternalServerError, "tenant spec: %v", err)
		return
	}
	t := &tenant{ctl: ctl, spec: specJSON, lastUsed: s.now().UnixNano()}
	// Hold the new tenant's logMu across map insertion and the create
	// append: an admit that finds the tenant in the map blocks on logMu
	// until the creation itself is in the log.
	t.logMu.Lock()
	s.mu.Lock()
	if _, dup := s.tenants[id]; dup {
		s.mu.Unlock()
		t.logMu.Unlock()
		s.replyErr(w, http.StatusConflict, "tenant %q already exists", id)
		return
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		s.mu.Unlock()
		t.logMu.Unlock()
		s.replyErr(w, http.StatusTooManyRequests, "tenant limit %d reached", s.cfg.MaxTenants)
		return
	}
	s.tenants[id] = t
	s.mu.Unlock()
	if s.persist != nil {
		s.persist.log(id, store.Op{Kind: store.OpCreate, Spec: specJSON})
	}
	t.logMu.Unlock()
	s.reply(w, http.StatusCreated, map[string]any{"tenant": id, "processors": len(spec.Procs)})
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("tenant")
	s.mu.RLock()
	t := s.tenants[id]
	s.mu.RUnlock()
	if t == nil {
		s.replyErr(w, http.StatusNotFound, "unknown tenant %q", id)
		return
	}
	// Log the drop BEFORE removing the id from the map, under the
	// tenant's logMu. A concurrent re-create of the same id cannot insert
	// (and so cannot append its OpCreate) while the id is still mapped,
	// so the store always sees drop-then-create in that order; appending
	// after the delete would let the OpCreate reach the store first, be
	// rejected ErrTenantExists, and leave durable state saying dropped
	// while the server serves the re-created tenant.
	t.logMu.Lock()
	s.mu.Lock()
	if s.tenants[id] != t {
		// Lost the race with another drop or an eviction of this tenant.
		s.mu.Unlock()
		t.logMu.Unlock()
		s.replyErr(w, http.StatusNotFound, "unknown tenant %q", id)
		return
	}
	s.mu.Unlock()
	if s.persist != nil {
		s.persist.log(id, store.Op{Kind: store.OpDrop})
	}
	s.mu.Lock()
	delete(s.tenants, id)
	s.mu.Unlock()
	t.logMu.Unlock()
	s.reply(w, http.StatusOK, map[string]any{"dropped": id})
}

// admitResponse is the admission-decision body.
type admitResponse struct {
	Admitted bool `json:"admitted"`
	// Jobs is the admitted-set size after the decision.
	Jobs int `json:"jobs"`
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	if s.shed(w) {
		return
	}
	t := s.shard(w, r)
	if t == nil {
		return
	}
	job, err := model.LoadJobLimited(r.Body, s.cfg.Limits)
	if err != nil {
		s.replyErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := r.PathValue("tenant")
	start := time.Now()
	t.logMu.Lock()
	ok, err := t.ctl.RequestOpts(job, s.decisionOpts(r))
	if err == nil && ok && s.persist != nil {
		// Log after the commit, before the 200: a crash between the two
		// forgets only an unacknowledged admission.
		jobJSON, merr := json.Marshal(job)
		if merr == nil {
			if s.persist.log(id, store.Op{Kind: store.OpAdmit, Job: jobJSON, Pri: s.priVector(t.ctl)}) {
				s.persist.snapshot(id, t.spec, t.ctl)
			}
		} else {
			s.persist.errors.Add(1)
		}
	}
	t.logMu.Unlock()
	s.decHist.observe(time.Since(start))
	if err != nil {
		s.decisionError(w, r, err)
		return
	}
	if ok {
		s.counters.admitsGranted.Add(1)
	} else {
		s.counters.admitsDenied.Add(1)
	}
	s.reply(w, http.StatusOK, admitResponse{Admitted: ok, Jobs: len(t.ctl.Admitted())})
}

// removeRequest / removeResponse are the removal bodies.
type removeRequest struct {
	Name string `json:"name"`
}
type removeResponse struct {
	Removed bool `json:"removed"`
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	if s.shed(w) {
		return
	}
	t := s.shard(w, r)
	if t == nil {
		return
	}
	var req removeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Name == "" {
		s.replyErr(w, http.StatusBadRequest, "removal body must be {\"name\": \"...\"}")
		return
	}
	id := r.PathValue("tenant")
	start := time.Now()
	t.logMu.Lock()
	present, err := t.ctl.RemoveOpts(req.Name, s.decisionOpts(r))
	if err == nil && present && s.persist != nil {
		if s.persist.log(id, store.Op{Kind: store.OpRemove, Name: req.Name, Pri: s.priVector(t.ctl)}) {
			s.persist.snapshot(id, t.spec, t.ctl)
		}
	}
	t.logMu.Unlock()
	s.decHist.observe(time.Since(start))
	if err != nil {
		// The controller rolled back; the job is still admitted.
		s.decisionError(w, r, err)
		return
	}
	if present {
		s.counters.removes.Add(1)
	}
	s.reply(w, http.StatusOK, removeResponse{Removed: present})
}

// updateResponse is the in-place job update body.
type updateResponse struct {
	Updated bool `json:"updated"`
}

// handleUpdate re-decides an admitted job in place: the body is a full
// job record whose name must already be admitted; the replacement keeps
// the hop count and is committed only if every deadline still holds.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.shed(w) {
		return
	}
	t := s.shard(w, r)
	if t == nil {
		return
	}
	job, err := model.LoadJobLimited(r.Body, s.cfg.Limits)
	if err != nil {
		s.replyErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := r.PathValue("tenant")
	start := time.Now()
	t.logMu.Lock()
	present, ok, err := t.ctl.UpdateOpts(job, s.decisionOpts(r))
	if err == nil && present && ok && s.persist != nil {
		jobJSON, merr := json.Marshal(job)
		if merr == nil {
			if s.persist.log(id, store.Op{Kind: store.OpMutate, Job: jobJSON, Name: job.Name, Pri: s.priVector(t.ctl)}) {
				s.persist.snapshot(id, t.spec, t.ctl)
			}
		} else {
			s.persist.errors.Add(1)
		}
	}
	t.logMu.Unlock()
	s.decHist.observe(time.Since(start))
	if err != nil {
		s.decisionError(w, r, err)
		return
	}
	if !present {
		s.replyErr(w, http.StatusNotFound, "job %q not admitted", job.Name)
		return
	}
	if ok {
		s.counters.admitsGranted.Add(1)
	} else {
		s.counters.admitsDenied.Add(1)
	}
	s.reply(w, http.StatusOK, updateResponse{Updated: ok})
}

// boundsResponse lists the admitted jobs with their certified worst-case
// end-to-end response bounds.
type boundsResponse struct {
	Jobs []jobBound `json:"jobs"`
}
type jobBound struct {
	Name  string      `json:"name"`
	Bound model.Ticks `json:"bound"`
}

func (s *Server) handleBounds(w http.ResponseWriter, r *http.Request) {
	t := s.shard(w, r)
	if t == nil {
		return
	}
	names, bounds, err := t.ctl.NamedBounds()
	if err != nil {
		s.decisionError(w, r, err)
		return
	}
	s.counters.queries.Add(1)
	doc := boundsResponse{Jobs: []jobBound{}}
	for i := range names {
		doc.Jobs = append(doc.Jobs, jobBound{Name: names[i], Bound: bounds[i]})
	}
	s.reply(w, http.StatusOK, doc)
}

// decisionError maps controller errors to statuses: duplicates are 409,
// canceled/overbudget decisions 503 (the client may retry), malformed
// systems 400 (the analysis rejected the input), anything else 500.
func (s *Server) decisionError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, admission.ErrDuplicate):
		s.replyErr(w, http.StatusConflict, "%v", err)
	case r.Context().Err() != nil, errors.Is(err, fault.ErrBudgetExceeded):
		s.replyErr(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, analysis.ErrCyclic), isValidation(err):
		s.replyErr(w, http.StatusBadRequest, "%v", err)
	default:
		s.replyErr(w, http.StatusInternalServerError, "%v", err)
	}
}

// isValidation reports whether the error came from model validation of a
// trial system — a malformed job the analysis refused, i.e. the client's
// fault, not the server's.
func isValidation(err error) bool {
	var verr *model.ValidationError
	return errors.As(err, &verr)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	ntenants := len(s.tenants)
	jobs := 0
	for _, t := range s.tenants {
		jobs += len(t.ctl.Admitted())
	}
	s.mu.RUnlock()

	buckets, count, mean := s.decHist.snapshot()
	snap := StatsSnapshot{
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Overload:       s.overload.Name(),
		Tenants:        ntenants,
		AdmittedJobs:   jobs,
		AdmitsGranted:  s.counters.admitsGranted.Load(),
		AdmitsDenied:   s.counters.admitsDenied.Load(),
		Removes:        s.counters.removes.Load(),
		Queries:        s.counters.queries.Load(),
		Sheds:          s.counters.sheds.Load(),
		ClientErrors:   s.counters.clientErrors.Load(),
		ServerErrors:   s.counters.serverErrors.Load(),
		Evictions:      s.counters.evictions.Load(),
		DecisionCount:  count,
		DecisionMeanNs: mean,
		DecisionP50Ns:  s.decHist.quantileNs(0.50),
		DecisionP99Ns:  s.decHist.quantileNs(0.99),
		DecisionHist:   buckets,
	}
	if s.persist != nil {
		snap.Store = &StoreStats{
			Degraded:          s.persist.degraded(),
			Errors:            s.persist.errors.Load(),
			Pending:           s.persist.pending(),
			Snapshots:         s.persist.snapshots.Load(),
			DroppedOps:        s.persist.dropped.Load(),
			ReplayQuarantines: s.counters.replayQuarantines.Load(),
		}
	}
	s.reply(w, http.StatusOK, snap)
}
