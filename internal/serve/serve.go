// Package serve is the online admission-control service over
// admission.Controller: the paper frames its whole analysis as an
// admission test for dynamic job sets, and this layer is what answers
// that test over HTTP, long-lived, under bursty query traffic.
//
// Architecture:
//
//   - Per-tenant sharding. Each tenant id owns an independent
//     admission.Controller (its own processors, job set, and warm
//     analysis session). The controller's internal lock serializes the
//     decisions of one shard; different shards decide in parallel — the
//     shard map itself is only read-locked on the request path.
//   - Shed before session. A pluggable Overload policy (always-admit or
//     token bucket) is consulted before a decision request touches its
//     shard; a shed costs a 429 and one atomic counter, never a session
//     lock. Queries (/bounds) are served from the resident converged
//     state and are not shed.
//   - Per-request execution options. Each decision runs under the HTTP
//     request's context plus the server's configured budget and worker
//     count (analysis.Options), so a disconnected client cancels its own
//     analysis and a poisoned request cannot run away.
//   - Graceful drain. Shutdown goes through http.Server.Shutdown, which
//     stops accepting and waits for in-flight decisions; sessions need no
//     special teardown because every commit point is transactional
//     (see the admission controller's rollback-on-error paths).
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"rta/internal/admission"
	"rta/internal/analysis"
	"rta/internal/fault"
	"rta/internal/model"
)

// Config parameterizes a Server.
type Config struct {
	// Limits caps tenant-spec and job request bodies (model.LoadLimited /
	// model.LoadJobLimited). Zero-value fields fall back to
	// model.DefaultLimits.
	Limits model.Limits
	// Policy is the priority-maintenance policy of every tenant
	// controller.
	Policy admission.PriorityPolicy
	// Opts are the per-decision execution options (workers, budget); the
	// request context is layered on per call.
	Opts analysis.Options
	// Overload is the shed policy; nil means AlwaysAdmit.
	Overload Overload
	// MaxTenants caps the number of concurrent tenants; 0 means 64.
	MaxTenants int
}

// Server is the admission-control service. Create with New, mount
// Handler on an http.Server.
type Server struct {
	cfg      Config
	overload Overload

	mu      sync.RWMutex
	tenants map[string]*tenant

	started  time.Time
	counters counters
	decHist  hist
}

type tenant struct {
	ctl *admission.Controller
}

// New creates a server with no tenants.
func New(cfg Config) *Server {
	if cfg.Overload == nil {
		cfg.Overload = AlwaysAdmit{}
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 64
	}
	if cfg.Limits == (model.Limits{}) {
		cfg.Limits = model.DefaultLimits
	}
	return &Server{
		cfg:      cfg,
		overload: cfg.Overload,
		tenants:  map[string]*tenant{},
		started:  time.Now(),
	}
}

// Handler returns the HTTP API:
//
//	PUT    /v1/tenants/{tenant}         create a tenant from a processor spec
//	DELETE /v1/tenants/{tenant}         drop a tenant and its job set
//	POST   /v1/tenants/{tenant}/admit   admission decision for one job
//	POST   /v1/tenants/{tenant}/remove  remove an admitted job by name
//	GET    /v1/tenants/{tenant}/bounds  per-job response bounds
//	GET    /healthz                     liveness
//	GET    /stats                       counters + decision-latency histogram
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/tenants/{tenant}", s.handleCreate)
	mux.HandleFunc("DELETE /v1/tenants/{tenant}", s.handleDrop)
	mux.HandleFunc("POST /v1/tenants/{tenant}/admit", s.handleAdmit)
	mux.HandleFunc("POST /v1/tenants/{tenant}/remove", s.handleRemove)
	mux.HandleFunc("GET /v1/tenants/{tenant}/bounds", s.handleBounds)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// errorDoc is the JSON error body.
type errorDoc struct {
	Error string `json:"error"`
}

func (s *Server) reply(w http.ResponseWriter, status int, doc any) {
	if status >= 500 {
		s.counters.serverErrors.Add(1)
	} else if status >= 400 && status != http.StatusTooManyRequests {
		s.counters.clientErrors.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(doc)
}

func (s *Server) replyErr(w http.ResponseWriter, status int, format string, args ...any) {
	s.reply(w, status, errorDoc{Error: fmt.Sprintf(format, args...)})
}

// shard returns the tenant's shard, or nil after writing a 404.
func (s *Server) shard(w http.ResponseWriter, r *http.Request) *tenant {
	id := r.PathValue("tenant")
	s.mu.RLock()
	t := s.tenants[id]
	s.mu.RUnlock()
	if t == nil {
		s.replyErr(w, http.StatusNotFound, "unknown tenant %q", id)
	}
	return t
}

// shed consults the overload policy; on a shed it writes the 429 and
// reports true. Decisions only — this runs before any shard state is
// touched.
func (s *Server) shed(w http.ResponseWriter) bool {
	if s.overload.Admit() {
		return false
	}
	s.counters.sheds.Add(1)
	w.Header().Set("Retry-After", "1")
	s.replyErr(w, http.StatusTooManyRequests, "shed by overload policy %s", s.overload.Name())
	return true
}

// decisionOpts binds the request context to the configured execution
// options for one decision.
func (s *Server) decisionOpts(r *http.Request) analysis.Options {
	opts := s.cfg.Opts
	opts.Context = r.Context()
	return opts
}

// handleCreate builds a tenant shard from a processor spec: a system
// document whose jobs array must be empty (jobs are admitted one by one
// through /admit, so every admitted job has passed the admission test).
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("tenant")
	if id == "" {
		s.replyErr(w, http.StatusBadRequest, "tenant id must be non-empty")
		return
	}
	spec, err := model.LoadSpecLimited(r.Body, s.cfg.Limits)
	if err != nil {
		s.replyErr(w, http.StatusBadRequest, "tenant spec: %v", err)
		return
	}
	if len(spec.Jobs) != 0 {
		s.replyErr(w, http.StatusBadRequest, "tenant spec must not carry jobs; admit them through /admit")
		return
	}
	if len(spec.Procs) == 0 {
		s.replyErr(w, http.StatusBadRequest, "tenant spec needs at least one processor")
		return
	}
	ctl, err := admission.NewWithOptions(spec.Procs, s.cfg.Policy, s.cfg.Opts)
	if err != nil {
		s.replyErr(w, http.StatusBadRequest, "tenant spec: %v", err)
		return
	}
	s.mu.Lock()
	if _, dup := s.tenants[id]; dup {
		s.mu.Unlock()
		s.replyErr(w, http.StatusConflict, "tenant %q already exists", id)
		return
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		s.mu.Unlock()
		s.replyErr(w, http.StatusTooManyRequests, "tenant limit %d reached", s.cfg.MaxTenants)
		return
	}
	s.tenants[id] = &tenant{ctl: ctl}
	s.mu.Unlock()
	s.reply(w, http.StatusCreated, map[string]any{"tenant": id, "processors": len(spec.Procs)})
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("tenant")
	s.mu.Lock()
	_, ok := s.tenants[id]
	delete(s.tenants, id)
	s.mu.Unlock()
	if !ok {
		s.replyErr(w, http.StatusNotFound, "unknown tenant %q", id)
		return
	}
	s.reply(w, http.StatusOK, map[string]any{"dropped": id})
}

// admitResponse is the admission-decision body.
type admitResponse struct {
	Admitted bool `json:"admitted"`
	// Jobs is the admitted-set size after the decision.
	Jobs int `json:"jobs"`
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	if s.shed(w) {
		return
	}
	t := s.shard(w, r)
	if t == nil {
		return
	}
	job, err := model.LoadJobLimited(r.Body, s.cfg.Limits)
	if err != nil {
		s.replyErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	start := time.Now()
	ok, err := t.ctl.RequestOpts(job, s.decisionOpts(r))
	s.decHist.observe(time.Since(start))
	if err != nil {
		s.decisionError(w, r, err)
		return
	}
	if ok {
		s.counters.admitsGranted.Add(1)
	} else {
		s.counters.admitsDenied.Add(1)
	}
	s.reply(w, http.StatusOK, admitResponse{Admitted: ok, Jobs: len(t.ctl.Admitted())})
}

// removeRequest / removeResponse are the removal bodies.
type removeRequest struct {
	Name string `json:"name"`
}
type removeResponse struct {
	Removed bool `json:"removed"`
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	if s.shed(w) {
		return
	}
	t := s.shard(w, r)
	if t == nil {
		return
	}
	var req removeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Name == "" {
		s.replyErr(w, http.StatusBadRequest, "removal body must be {\"name\": \"...\"}")
		return
	}
	start := time.Now()
	present, err := t.ctl.RemoveOpts(req.Name, s.decisionOpts(r))
	s.decHist.observe(time.Since(start))
	if err != nil {
		// The controller rolled back; the job is still admitted.
		s.decisionError(w, r, err)
		return
	}
	if present {
		s.counters.removes.Add(1)
	}
	s.reply(w, http.StatusOK, removeResponse{Removed: present})
}

// boundsResponse lists the admitted jobs with their certified worst-case
// end-to-end response bounds.
type boundsResponse struct {
	Jobs []jobBound `json:"jobs"`
}
type jobBound struct {
	Name  string      `json:"name"`
	Bound model.Ticks `json:"bound"`
}

func (s *Server) handleBounds(w http.ResponseWriter, r *http.Request) {
	t := s.shard(w, r)
	if t == nil {
		return
	}
	names, bounds, err := t.ctl.NamedBounds()
	if err != nil {
		s.decisionError(w, r, err)
		return
	}
	s.counters.queries.Add(1)
	doc := boundsResponse{Jobs: []jobBound{}}
	for i := range names {
		doc.Jobs = append(doc.Jobs, jobBound{Name: names[i], Bound: bounds[i]})
	}
	s.reply(w, http.StatusOK, doc)
}

// decisionError maps controller errors to statuses: duplicates are 409,
// canceled/overbudget decisions 503 (the client may retry), malformed
// systems 400 (the analysis rejected the input), anything else 500.
func (s *Server) decisionError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, admission.ErrDuplicate):
		s.replyErr(w, http.StatusConflict, "%v", err)
	case r.Context().Err() != nil, errors.Is(err, fault.ErrBudgetExceeded):
		s.replyErr(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, analysis.ErrCyclic), isValidation(err):
		s.replyErr(w, http.StatusBadRequest, "%v", err)
	default:
		s.replyErr(w, http.StatusInternalServerError, "%v", err)
	}
}

// isValidation reports whether the error came from model validation of a
// trial system — a malformed job the analysis refused, i.e. the client's
// fault, not the server's.
func isValidation(err error) bool {
	var verr *model.ValidationError
	return errors.As(err, &verr)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	ntenants := len(s.tenants)
	jobs := 0
	for _, t := range s.tenants {
		jobs += len(t.ctl.Admitted())
	}
	s.mu.RUnlock()

	buckets, count, mean := s.decHist.snapshot()
	s.reply(w, http.StatusOK, StatsSnapshot{
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Overload:       s.overload.Name(),
		Tenants:        ntenants,
		AdmittedJobs:   jobs,
		AdmitsGranted:  s.counters.admitsGranted.Load(),
		AdmitsDenied:   s.counters.admitsDenied.Load(),
		Removes:        s.counters.removes.Load(),
		Queries:        s.counters.queries.Load(),
		Sheds:          s.counters.sheds.Load(),
		ClientErrors:   s.counters.clientErrors.Load(),
		ServerErrors:   s.counters.serverErrors.Load(),
		DecisionCount:  count,
		DecisionMeanNs: mean,
		DecisionP50Ns:  s.decHist.quantileNs(0.50),
		DecisionP99Ns:  s.decHist.quantileNs(0.99),
		DecisionHist:   buckets,
	})
}
