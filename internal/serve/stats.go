package serve

import (
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 latency buckets; bucket i covers
// [2^i, 2^(i+1)) nanoseconds, which spans 1ns..~9s — decision latencies
// sit in the µs..ms range, comfortably inside.
const histBuckets = 34

// hist is a lock-free log2 latency histogram. It trades exactness for a
// contention-free hot path: each decision does one atomic increment. The
// load-test harness computes exact quantiles client-side from raw samples
// (metrics.Quantile); the server-side histogram is the always-on
// operational view.
type hist struct {
	count   atomic.Uint64
	sumNs   atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

func (h *hist) observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if d < 0 {
		ns = 0
	}
	i := 0
	for v := ns >> 1; v != 0 && i < histBuckets-1; v >>= 1 {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// quantileNs returns the upper bound of the bucket holding the
// nearest-rank q-quantile — an upper estimate with log2 resolution.
func (h *hist) quantileNs(q float64) uint64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return uint64(1) << (i + 1)
		}
	}
	return uint64(1) << histBuckets
}

// snapshot returns the non-empty buckets as (upper bound ns, count)
// pairs, plus count and mean.
func (h *hist) snapshot() ([]HistBucket, uint64, float64) {
	var out []HistBucket
	n := h.count.Load()
	for i := 0; i < histBuckets; i++ {
		if c := h.buckets[i].Load(); c > 0 {
			out = append(out, HistBucket{UpToNs: uint64(1) << (i + 1), Count: c})
		}
	}
	mean := 0.0
	if n > 0 {
		mean = float64(h.sumNs.Load()) / float64(n)
	}
	return out, n, mean
}

// counters aggregates the server's request accounting. All fields are
// atomic: the hot path never takes a server-wide lock.
type counters struct {
	admitsGranted atomic.Uint64
	admitsDenied  atomic.Uint64
	removes       atomic.Uint64
	queries       atomic.Uint64
	sheds         atomic.Uint64
	clientErrors  atomic.Uint64 // 4xx other than 429
	serverErrors  atomic.Uint64 // 5xx
	evictions     atomic.Uint64 // TTL-evicted tenants
	// replayQuarantines counts tenants whose recovered log would not
	// replay into a consistent controller at startup.
	replayQuarantines atomic.Uint64
}

// HistBucket is one non-empty histogram bucket in /stats.
type HistBucket struct {
	// UpToNs is the exclusive upper bound of the bucket in nanoseconds.
	UpToNs uint64 `json:"up_to_ns"`
	// Count is the number of decisions that landed in it.
	Count uint64 `json:"count"`
}

// StatsSnapshot is the /stats response document.
type StatsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Overload      string  `json:"overload_policy"`
	Tenants       int     `json:"tenants"`
	AdmittedJobs  int     `json:"admitted_jobs"`

	AdmitsGranted uint64 `json:"admits_granted"`
	AdmitsDenied  uint64 `json:"admits_denied"`
	Removes       uint64 `json:"removes"`
	Queries       uint64 `json:"queries"`
	Sheds         uint64 `json:"sheds"`
	ClientErrors  uint64 `json:"client_errors"`
	ServerErrors  uint64 `json:"server_errors"`

	// Evictions counts tenants dropped by the idle-TTL janitor.
	Evictions uint64 `json:"evictions"`

	// Decision latency (admit/remove round trips inside the handler),
	// from the log2 histogram: quantiles are bucket upper bounds.
	DecisionCount  uint64       `json:"decision_count"`
	DecisionMeanNs float64      `json:"decision_mean_ns"`
	DecisionP50Ns  uint64       `json:"decision_p50_ns"`
	DecisionP99Ns  uint64       `json:"decision_p99_ns"`
	DecisionHist   []HistBucket `json:"decision_histogram,omitempty"`

	// Store is present when the server runs with a durable store.
	Store *StoreStats `json:"store,omitempty"`
}

// StoreStats is the durability section of /stats.
type StoreStats struct {
	// Degraded is true while unlogged operations wait in the outbox; the
	// server keeps deciding from memory, but a crash now would lose the
	// queued suffix.
	Degraded bool `json:"degraded"`
	// Errors counts failed store operations (appends and snapshots).
	Errors uint64 `json:"store_errors"`
	// Pending is the current outbox depth.
	Pending int `json:"pending_ops"`
	// Snapshots counts snapshots written.
	Snapshots uint64 `json:"snapshots"`
	// DroppedOps counts outbox entries abandoned as unretryable.
	DroppedOps uint64 `json:"dropped_ops"`
	// ReplayQuarantines counts tenants quarantined at startup because
	// their recovered log did not replay into a consistent controller.
	ReplayQuarantines uint64 `json:"replay_quarantines"`
}
