package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rta/internal/admission"
	"rta/internal/model"
	"rta/internal/store"
)

// openStore opens a store for a serve test. No Cleanup close is
// registered on purpose: the crash-recovery tests abandon the handle to
// simulate a kill -9, and leaked descriptors die with the test process.
func openStore(t *testing.T, dir string, mut ...func(*store.Config)) *store.Store {
	t.Helper()
	cfg := store.Config{Dir: dir, SnapshotEvery: 4}
	for _, m := range mut {
		m(&cfg)
	}
	st, err := store.Open(cfg)
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	return st
}

func getBounds(t *testing.T, base, id string) (int, []byte) {
	t.Helper()
	return doReq(t, http.MethodGet, base+"/v1/tenants/"+id+"/bounds", nil)
}

func getStats(t *testing.T, base string) StatsSnapshot {
	t.Helper()
	status, raw := doReq(t, http.MethodGet, base+"/stats", nil)
	var snap StatsSnapshot
	if status != http.StatusOK || json.Unmarshal(raw, &snap) != nil {
		t.Fatalf("stats: status %d: %s", status, raw)
	}
	return snap
}

// TestStoreRestartRoundTrip drives every mutating endpoint against a
// store-backed server, restarts from the same directory, and requires
// the recovered tenants to answer /bounds byte-identically — for each
// priority policy, since replay re-applies logged priority vectors
// rather than re-running the policy.
func TestStoreRestartRoundTrip(t *testing.T) {
	policies := map[string]admission.PriorityPolicy{
		"keep":  admission.KeepPriorities,
		"dm":    admission.DeadlineMonotonic,
		"synth": admission.Synthesized,
	}
	for pname, policy := range policies {
		t.Run(pname, func(t *testing.T) {
			dir := t.TempDir()
			st := openStore(t, dir)
			s, ts := newTestServer(t, Config{Policy: policy, Store: st})

			createTenant(t, ts.URL, "alpha")
			createTenant(t, ts.URL, "beta")
			// Six admissions cross the SnapshotEvery=4 cadence, so the
			// restart exercises snapshot + tail replay, not tail-only.
			for i := 0; i < 6; i++ {
				status, raw := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/alpha/admit",
					jobJSON(t, fmt.Sprintf("j%d", i), 100, 10_000))
				var adm admitResponse
				if status != http.StatusOK || json.Unmarshal(raw, &adm) != nil || !adm.Admitted {
					t.Fatalf("admit j%d: status %d: %s", i, status, raw)
				}
			}
			// In-place update (logged as a mutate) and a removal.
			status, raw := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/alpha/update",
				jobJSON(t, "j0", 150, 10_000))
			var upd updateResponse
			if status != http.StatusOK || json.Unmarshal(raw, &upd) != nil || !upd.Updated {
				t.Fatalf("update j0: status %d: %s", status, raw)
			}
			rm, _ := json.Marshal(removeRequest{Name: "j1"})
			if status, raw := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/alpha/remove", rm); status != http.StatusOK {
				t.Fatalf("remove j1: status %d: %s", status, raw)
			}
			if status, raw := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/beta/admit",
				jobJSON(t, "only", 200, 8_000)); status != http.StatusOK {
				t.Fatalf("admit beta/only: status %d: %s", status, raw)
			}
			// A dropped tenant must stay dropped across the restart.
			createTenant(t, ts.URL, "gone")
			if status, raw := doReq(t, http.MethodDelete, ts.URL+"/v1/tenants/gone", nil); status != http.StatusOK {
				t.Fatalf("drop gone: status %d: %s", status, raw)
			}

			pre := map[string][]byte{}
			for _, id := range []string{"alpha", "beta"} {
				status, raw := getBounds(t, ts.URL, id)
				if status != http.StatusOK {
					t.Fatalf("pre-restart bounds %s: status %d: %s", id, status, raw)
				}
				pre[id] = raw
			}

			ts.Close()
			s.Close()
			if err := st.Close(); err != nil {
				t.Fatalf("store close: %v", err)
			}

			st2 := openStore(t, dir)
			s2, ts2 := newTestServer(t, Config{Policy: policy, Store: st2})
			defer s2.Close()
			if notes := s2.Recovery(); len(notes) != 0 {
				t.Fatalf("recovery notes after clean restart: %v", notes)
			}
			for id, want := range pre {
				status, got := getBounds(t, ts2.URL, id)
				if status != http.StatusOK {
					t.Fatalf("post-restart bounds %s: status %d: %s", id, status, got)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("tenant %s bounds changed across restart:\n pre  %s\n post %s", id, want, got)
				}
			}
			if status, _ := getBounds(t, ts2.URL, "gone"); status != http.StatusNotFound {
				t.Fatalf("dropped tenant resurrected: bounds status %d", status)
			}
			snap := getStats(t, ts2.URL)
			if snap.Store == nil || snap.Store.ReplayQuarantines != 0 {
				t.Fatalf("stats store section after restart = %+v, want zero quarantines", snap.Store)
			}
		})
	}
}

// flakyFS implements store.FS over the real filesystem but fails every
// file write and fsync while tripped — a disk that went read-only under
// a live server. slowUs additionally makes every successful write sleep
// that many microseconds, widening the concurrency windows the race
// regression tests below aim at.
type flakyFS struct {
	fail   atomic.Bool
	slowUs atomic.Int64
}

var errFlaky = errors.New("injected disk fault")

func (f *flakyFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (f *flakyFS) OpenAppend(path string) (store.File, error) {
	file, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &flakyFile{f: file, fs: f}, nil
}

func (f *flakyFS) Create(path string) (store.File, error) {
	file, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &flakyFile{f: file, fs: f}, nil
}

func (f *flakyFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (f *flakyFS) ReadDir(path string) ([]string, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (f *flakyFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (f *flakyFS) Remove(path string) error             { return os.Remove(path) }
func (f *flakyFS) RemoveAll(path string) error          { return os.RemoveAll(path) }
func (f *flakyFS) Truncate(path string, n int64) error  { return os.Truncate(path, n) }

func (f *flakyFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (f *flakyFS) IsDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

type flakyFile struct {
	f  *os.File
	fs *flakyFS
}

func (w *flakyFile) Write(p []byte) (int, error) {
	if w.fs.fail.Load() {
		return 0, errFlaky
	}
	if d := w.fs.slowUs.Load(); d > 0 {
		time.Sleep(time.Duration(d) * time.Microsecond)
	}
	return w.f.Write(p)
}

func (w *flakyFile) Sync() error {
	if w.fs.fail.Load() {
		return errFlaky
	}
	return w.f.Sync()
}

func (w *flakyFile) Close() error { return w.f.Close() }

// TestStoreFaultDegradesNotFails trips the disk under a live server: the
// admission must still be acknowledged, /healthz must report degraded,
// and after the disk heals the outbox must drain so a restart recovers
// every acknowledged operation — including the one that failed its
// first append.
func TestStoreFaultDegradesNotFails(t *testing.T) {
	dir := t.TempDir()
	fs := &flakyFS{}
	st := openStore(t, dir, func(c *store.Config) { c.FS = fs; c.Fsync = true })
	s, ts := newTestServer(t, Config{Policy: admission.DeadlineMonotonic, Store: st})

	createTenant(t, ts.URL, "acme")
	if status, raw := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/admit",
		jobJSON(t, "before", 100, 10_000)); status != http.StatusOK {
		t.Fatalf("healthy admit: status %d: %s", status, raw)
	}

	fs.fail.Store(true)
	status, raw := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/acme/admit",
		jobJSON(t, "during", 100, 10_000))
	var adm admitResponse
	if status != http.StatusOK || json.Unmarshal(raw, &adm) != nil || !adm.Admitted {
		t.Fatalf("admit during disk fault: status %d: %s, want acknowledged admission", status, raw)
	}
	if status, raw := doReq(t, http.MethodGet, ts.URL+"/healthz", nil); string(raw) != "degraded\n" {
		t.Fatalf("healthz during fault: status %d body %q, want degraded", status, raw)
	}
	snap := getStats(t, ts.URL)
	if snap.Store == nil || !snap.Store.Degraded || snap.Store.Errors == 0 || snap.Store.Pending == 0 {
		t.Fatalf("stats during fault = %+v, want degraded with pending ops and errors counted", snap.Store)
	}

	fs.fail.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap = getStats(t, ts.URL)
		if snap.Store != nil && !snap.Store.Degraded && snap.Store.Pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("outbox never drained after heal: %+v", snap.Store)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, raw := doReq(t, http.MethodGet, ts.URL+"/healthz", nil); string(raw) != "ok\n" {
		t.Fatalf("healthz after drain: body %q, want ok", raw)
	}
	_, pre := getBounds(t, ts.URL, "acme")

	ts.Close()
	s.Close()
	if err := st.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}
	st2 := openStore(t, dir)
	s2, ts2 := newTestServer(t, Config{Policy: admission.DeadlineMonotonic, Store: st2})
	defer s2.Close()
	status, post := getBounds(t, ts2.URL, "acme")
	if status != http.StatusOK || !bytes.Equal(pre, post) {
		t.Fatalf("recovered bounds after degraded episode:\n pre  %s\n post %s", pre, post)
	}
	var doc boundsResponse
	if json.Unmarshal(post, &doc) != nil || len(doc.Jobs) != 2 {
		t.Fatalf("recovered job set = %s, want both before and during", post)
	}
}

// TestDrainSerialized: drain is what the retry timer fires, and a Reset
// on an already-fired timer can make it fire again while a previous
// drain is still mid-append. Concurrent drain calls must collapse to
// one — two would append the same outbox head twice (a semantic
// duplicate that quarantines the tenant on replay) and both dequeue it,
// underflowing the queue.
func TestDrainSerialized(t *testing.T) {
	dir := t.TempDir()
	fs := &flakyFS{}
	st := openStore(t, dir, func(c *store.Config) { c.FS = fs })
	p := newPersister(st)
	defer p.close()

	if _, err := st.Append("acme", store.Op{Kind: store.OpCreate, Spec: []byte(twoProcSpec)}); err != nil {
		t.Fatal(err)
	}
	fs.fail.Store(true)
	const queued = 16
	for i := 0; i < queued; i++ {
		p.log("acme", store.Op{Kind: store.OpAdmit, Job: jobJSON(t, fmt.Sprintf("q%d", i), 100, 10_000)})
	}
	if got := p.pending(); got != queued {
		t.Fatalf("outbox depth = %d, want %d", got, queued)
	}
	fs.fail.Store(false)
	fs.slowUs.Store(2_000) // every append now takes ~2ms outside p.mu
	// Fire drain from many goroutines at once, racing the armed retry
	// timer: only one may run the dequeue loop. The slowed writes
	// guarantee the drains overlap — without serialization they all read
	// the same queue head, append it repeatedly, and dequeue past the
	// end of the outbox.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.drain()
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for p.pending() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("outbox never drained: %d pending", p.pending())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := p.dropped.Load(); n != 0 {
		t.Fatalf("%d queued ops dropped as unretryable", n)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir)
	rep := st2.Report()
	if rep.Recovered != 1 || rep.TornTails != 0 || rep.QuarantinedSegments != 0 {
		t.Fatalf("recovery after concurrent drains: %+v", rep)
	}
	if tail := st2.Tenants()[0].Tail; len(tail) != queued+1 {
		t.Fatalf("recovered %d ops, want %d — a concurrent drain double-appended", len(tail), queued+1)
	}
}

// TestDropRecreateRaceKeepsWALOrdered: concurrent DELETE and PUT on the
// same tenant id must keep the WAL agreeing with the live server — an
// OpCreate must never reach the store before the OpDrop that made room
// for it (it would be rejected ErrTenantExists and dropped, leaving
// durable state saying dropped while the server serves the tenant), so
// after churn on a healthy disk nothing may have been dropped as
// unretryable and a restart serves exactly the pre-restart state.
func TestDropRecreateRaceKeepsWALOrdered(t *testing.T) {
	dir := t.TempDir()
	fs := &flakyFS{}
	fs.slowUs.Store(100) // WAL contention widens the map-vs-append window
	st := openStore(t, dir, func(c *store.Config) { c.FS = fs })
	s, ts := newTestServer(t, Config{Policy: admission.DeadlineMonotonic, Store: st})

	createTenant(t, ts.URL, "flip")
	// Churn straight into the handler (no HTTP round trip) so the two
	// goroutines stay packed into the racy window. 201/409 and 200/404
	// are all legitimate outcomes mid-churn.
	h := s.Handler()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			req := httptest.NewRequest(http.MethodPut, "/v1/tenants/flip", bytes.NewReader([]byte(twoProcSpec)))
			h.ServeHTTP(httptest.NewRecorder(), req)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			req := httptest.NewRequest(http.MethodDelete, "/v1/tenants/flip", nil)
			h.ServeHTTP(httptest.NewRecorder(), req)
		}
	}()
	wg.Wait()
	fs.slowUs.Store(0)

	// Settle to a known final state: dropped, then created, then one
	// admitted job the restart must reproduce.
	if status, _ := doReq(t, http.MethodDelete, ts.URL+"/v1/tenants/flip", nil); status != http.StatusOK && status != http.StatusNotFound {
		t.Fatalf("settling drop: status %d", status)
	}
	createTenant(t, ts.URL, "flip")
	if status, raw := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/flip/admit",
		jobJSON(t, "j", 100, 10_000)); status != http.StatusOK {
		t.Fatalf("admit: status %d: %s", status, raw)
	}
	// The disk never faulted, so any dropped-unretryable op means the
	// create/drop appends went to the store out of order.
	if pend, drop := s.persist.pending(), s.persist.dropped.Load(); pend != 0 || drop != 0 {
		t.Fatalf("outbox pending=%d droppedOps=%d after healthy churn, want 0/0", pend, drop)
	}
	_, pre := getBounds(t, ts.URL, "flip")

	ts.Close()
	s.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir)
	s2, ts2 := newTestServer(t, Config{Policy: admission.DeadlineMonotonic, Store: st2})
	defer s2.Close()
	if notes := s2.Recovery(); len(notes) != 0 {
		t.Fatalf("recovery notes after churn: %v", notes)
	}
	status, post := getBounds(t, ts2.URL, "flip")
	if status != http.StatusOK || !bytes.Equal(pre, post) {
		t.Fatalf("tenant lost or diverged across restart: status %d\n pre  %s\n post %s", status, pre, post)
	}
}

// TestSpecValidationSharedWithReplay is the regression test for the
// single-validation-path refactor: a spec the HTTP layer refuses must
// also fail replay. A jobs-carrying spec is rejected by PUT; the same
// bytes smuggled into the log directly (as if written by a buggy or
// older server) must quarantine that tenant at startup, not crash and
// not serve it.
func TestSpecValidationSharedWithReplay(t *testing.T) {
	smuggled, err := json.Marshal(model.Job{
		Name: "smuggled", Deadline: 1_000,
		Subjobs:  []model.Subjob{{Proc: 0, Exec: 10, Priority: 1}},
		Releases: []model.Ticks{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	badSpec := []byte(`{"processors":[{"name":"P0","scheduler":"SPP"},{"name":"P1","scheduler":"SPP"}],"jobs":[` + string(smuggled) + `]}`)

	dir := t.TempDir()
	st := openStore(t, dir)
	s, ts := newTestServer(t, Config{Policy: admission.DeadlineMonotonic, Store: st})
	status, raw := doReq(t, http.MethodPut, ts.URL+"/v1/tenants/bad", badSpec)
	if status != http.StatusBadRequest {
		t.Fatalf("PUT jobs-carrying spec: status %d: %s, want 400", status, raw)
	}
	// The store itself does not validate specs — append the refused spec
	// directly, simulating a writer that skipped the shared check.
	if _, err := st.Append("sneak", store.Op{Kind: store.OpCreate, Spec: badSpec}); err != nil {
		t.Fatalf("direct append: %v", err)
	}
	ts.Close()
	s.Close()
	if err := st.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}

	st2 := openStore(t, dir)
	s2, ts2 := newTestServer(t, Config{Policy: admission.DeadlineMonotonic, Store: st2})
	defer s2.Close()
	notes := s2.Recovery()
	if len(notes) != 1 || !bytes.Contains([]byte(notes[0]), []byte("spec")) {
		t.Fatalf("recovery notes = %v, want one spec-rejection quarantine", notes)
	}
	if status, _ := getBounds(t, ts2.URL, "sneak"); status != http.StatusNotFound {
		t.Fatalf("quarantined tenant served: bounds status %d", status)
	}
	if snap := getStats(t, ts2.URL); snap.Store == nil || snap.Store.ReplayQuarantines != 1 {
		t.Fatalf("stats store = %+v, want 1 replay quarantine", snap.Store)
	}
}

// TestTenantTTLEviction drives the idle janitor with an injected clock:
// an idle tenant is evicted and its eviction is logged as a drop (so a
// restart does not resurrect it); a recently touched tenant survives.
func TestTenantTTLEviction(t *testing.T) {
	var clock atomic.Int64
	clock.Store(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	dir := t.TempDir()
	st := openStore(t, dir)
	s, ts := newTestServer(t, Config{
		Policy:    admission.DeadlineMonotonic,
		Store:     st,
		TenantTTL: time.Hour,
		Now:       func() time.Time { return time.Unix(0, clock.Load()) },
	})

	createTenant(t, ts.URL, "idle")
	createTenant(t, ts.URL, "busy")
	if status, raw := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/idle/admit",
		jobJSON(t, "j", 100, 10_000)); status != http.StatusOK {
		t.Fatalf("admit: status %d: %s", status, raw)
	}

	clock.Add(int64(2 * time.Hour))
	// Touch busy at the advanced time; idle keeps its creation timestamp.
	if status, _ := getBounds(t, ts.URL, "busy"); status != http.StatusOK {
		t.Fatalf("touching busy: status %d", status)
	}
	s.evictIdle()

	if status, _ := getBounds(t, ts.URL, "idle"); status != http.StatusNotFound {
		t.Fatalf("idle tenant survived eviction: bounds status %d", status)
	}
	if status, _ := getBounds(t, ts.URL, "busy"); status != http.StatusOK {
		t.Fatalf("busy tenant evicted: bounds status %d", status)
	}
	if snap := getStats(t, ts.URL); snap.Evictions != 1 {
		t.Fatalf("stats evictions = %d, want 1", snap.Evictions)
	}

	ts.Close()
	s.Close()
	if err := st.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}
	st2 := openStore(t, dir)
	s2, ts2 := newTestServer(t, Config{Policy: admission.DeadlineMonotonic, Store: st2})
	defer s2.Close()
	if status, _ := getBounds(t, ts2.URL, "idle"); status != http.StatusNotFound {
		t.Fatalf("evicted tenant resurrected after restart: status %d", status)
	}
	if status, _ := getBounds(t, ts2.URL, "busy"); status != http.StatusOK {
		t.Fatalf("busy tenant lost across restart: status %d", status)
	}
}

// TestCrashRecoveryChurn is the randomized crash-recovery property:
// seeded churn of creates, admissions, removals, updates, and drops over
// several tenants; then a hard stop (the store is abandoned mid-flight,
// never Closed — exactly what a kill -9 leaves behind); then a reopen
// from the same directory. The live in-memory server IS the mirror fed
// exactly the acknowledged operations, so the property is: every
// surviving tenant's /bounds after recovery is byte-identical to its
// /bounds the moment before the crash, and dropped tenants stay dropped.
func TestCrashRecoveryChurn(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			st := openStore(t, dir, func(c *store.Config) { c.SnapshotEvery = 5 })
			_, ts := newTestServer(t, Config{Policy: admission.Synthesized, Store: st})

			ids := []string{"t0", "t1", "t2"}
			live := map[string]bool{}
			admitted := map[string][]string{}
			seq := 0
			for i := 0; i < 100; i++ {
				id := ids[rng.Intn(len(ids))]
				switch {
				case !live[id]:
					createTenant(t, ts.URL, id)
					live[id] = true
					admitted[id] = nil
				case rng.Float64() < 0.04:
					if status, raw := doReq(t, http.MethodDelete, ts.URL+"/v1/tenants/"+id, nil); status != http.StatusOK {
						t.Fatalf("drop %s: status %d: %s", id, status, raw)
					}
					live[id] = false
				case len(admitted[id]) > 0 && (rng.Float64() < 0.25 || len(admitted[id]) >= 12):
					k := rng.Intn(len(admitted[id]))
					name := admitted[id][k]
					rm, _ := json.Marshal(removeRequest{Name: name})
					if status, raw := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/"+id+"/remove", rm); status != http.StatusOK {
						t.Fatalf("remove %s/%s: status %d: %s", id, name, status, raw)
					}
					admitted[id] = append(admitted[id][:k], admitted[id][k+1:]...)
				case len(admitted[id]) > 0 && rng.Float64() < 0.15:
					name := admitted[id][rng.Intn(len(admitted[id]))]
					body := jobJSON(t, name, model.Ticks(50+rng.Intn(500)), model.Ticks(5_000+rng.Intn(15_000)))
					if status, raw := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/"+id+"/update", body); status != http.StatusOK {
						t.Fatalf("update %s/%s: status %d: %s", id, name, status, raw)
					}
				default:
					seq++
					name := fmt.Sprintf("job%d", seq)
					body := jobJSON(t, name, model.Ticks(50+rng.Intn(1_000)), model.Ticks(2_000+rng.Intn(18_000)))
					status, raw := doReq(t, http.MethodPost, ts.URL+"/v1/tenants/"+id+"/admit", body)
					var adm admitResponse
					if status != http.StatusOK || json.Unmarshal(raw, &adm) != nil {
						t.Fatalf("admit %s/%s: status %d: %s", id, name, status, raw)
					}
					if adm.Admitted {
						admitted[id] = append(admitted[id], name)
					}
				}
			}

			pre := map[string][]byte{}
			for id, ok := range live {
				if !ok {
					continue
				}
				status, raw := getBounds(t, ts.URL, id)
				if status != http.StatusOK {
					t.Fatalf("pre-crash bounds %s: status %d: %s", id, status, raw)
				}
				pre[id] = raw
			}

			// Hard stop: close only the listener. The Server and Store are
			// abandoned with their file handles open — nothing is flushed,
			// nothing is finalized.
			ts.Close()

			st2 := openStore(t, dir)
			s2, ts2 := newTestServer(t, Config{Policy: admission.Synthesized, Store: st2})
			defer s2.Close()
			if notes := s2.Recovery(); len(notes) != 0 {
				t.Fatalf("recovery notes after crash: %v", notes)
			}
			for id, want := range pre {
				status, got := getBounds(t, ts2.URL, id)
				if status != http.StatusOK {
					t.Fatalf("post-crash bounds %s: status %d: %s", id, status, got)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("tenant %s diverged across crash (seed %d):\n pre  %s\n post %s", id, seed, want, got)
				}
			}
			for id, ok := range live {
				if ok {
					continue
				}
				if status, _ := getBounds(t, ts2.URL, id); status != http.StatusNotFound {
					t.Fatalf("dropped tenant %s resurrected after crash", id)
				}
			}
		})
	}
}
