package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rta/internal/admission"
	"rta/internal/analysis"
	"rta/internal/model"
	"rta/internal/store"
)

// The durability glue between the server and the store.
//
// Ordering: each tenant's logMu is held across "commit the decision in
// the session" and "append the operation to the WAL", so the log's
// operation order is exactly the commit order and replay reproduces the
// committed state. Logging happens after the commit and before the HTTP
// acknowledgment: an operation that committed but crashed before its
// append was never acknowledged, so recovering to the logged prefix is
// consistent with everything any client was told.
//
// Degraded mode: a store error never fails the request — the in-memory
// session is the source of truth and keeps serving. The unlogged
// operation enters a FIFO outbox that a retry loop drains with capped
// exponential backoff; while the outbox is non-empty every new operation
// enqueues behind it (preserving per-tenant order) and /healthz reports
// "degraded". Only a process crash while degraded loses the queued
// suffix — and /stats has been advertising exactly that risk.

// retryMin/retryMax bound the outbox retry backoff.
const (
	retryMin = 50 * time.Millisecond
	retryMax = 2 * time.Second
)

// persister owns the server's durable side: the store handle, the
// degraded-mode outbox, and the retry loop.
type persister struct {
	st *store.Store

	mu      sync.Mutex
	queue   []queuedOp
	backoff time.Duration
	timer   *time.Timer
	// draining serializes drain: the timer can fire while a previous
	// drain is still appending (a Reset re-arms an already-fired
	// AfterFunc), and two drains would append the head twice and both
	// dequeue it. Only the goroutine that flips draining runs the loop.
	draining bool
	closed   bool

	errors    atomic.Uint64 // failed store operations (appends, snapshots)
	snapshots atomic.Uint64 // snapshots written
	dropped   atomic.Uint64 // outbox entries abandoned as unretryable
}

type queuedOp struct {
	id string
	op store.Op
}

func newPersister(st *store.Store) *persister {
	return &persister{st: st, backoff: retryMin}
}

// degraded reports whether unlogged operations are waiting in the outbox.
func (p *persister) degraded() bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue) > 0
}

func (p *persister) pending() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// log appends one committed operation, entering or extending degraded
// mode instead of failing. The caller holds the tenant's logMu. The
// returned snapDue asks the caller to write a snapshot now (still under
// logMu, so the snapshot captures exactly the logged prefix).
func (p *persister) log(id string, op store.Op) (snapDue bool) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	if len(p.queue) > 0 {
		// Order preservation: once anything is queued, everything queues.
		p.queue = append(p.queue, queuedOp{id, op})
		p.mu.Unlock()
		return false
	}
	p.mu.Unlock()

	due, err := p.st.Append(id, op)
	if err == nil {
		return due
	}
	p.errors.Add(1)
	if !retryable(err) {
		p.dropped.Add(1)
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.queue = append(p.queue, queuedOp{id, op})
	p.scheduleLocked(retryMin)
	return false
}

// retryable classifies store errors: sequencing errors (unknown tenant,
// duplicate create) can never succeed on retry and are dropped with a
// counter; everything else is assumed to be a transient disk fault.
func retryable(err error) bool {
	var unk *store.ErrUnknownTenant
	return !errors.As(err, &unk) && !errors.Is(err, store.ErrTenantExists)
}

// scheduleLocked arms the retry timer; p.mu held. While a drain is
// active the timer stays unarmed: the drain loop re-checks the queue
// under p.mu before exiting, so an entry enqueued meanwhile is either
// seen by that loop or enqueued after draining dropped — in which case
// this call arms the timer.
func (p *persister) scheduleLocked(d time.Duration) {
	p.backoff = d
	if p.draining {
		return
	}
	if p.timer == nil {
		p.timer = time.AfterFunc(d, p.drain)
	} else {
		p.timer.Reset(d)
	}
}

// drain retries the outbox head-first, preserving order: the head either
// appends or doubles the backoff; later entries never jump the queue.
// At most one drain runs at a time (the draining flag), so the head read
// before the unlocked Append is still queue[0] at the dequeue: log()
// only ever appends to the tail.
func (p *persister) drain() {
	p.mu.Lock()
	if p.draining || p.closed {
		p.mu.Unlock()
		return
	}
	p.draining = true
	p.mu.Unlock()
	for {
		p.mu.Lock()
		if p.closed || len(p.queue) == 0 {
			p.draining = false
			p.mu.Unlock()
			return
		}
		head := p.queue[0]
		p.mu.Unlock()

		_, err := p.st.Append(head.id, head.op)
		if err != nil && retryable(err) {
			p.errors.Add(1)
			p.mu.Lock()
			p.draining = false
			if !p.closed {
				p.scheduleLocked(min(p.backoff*2, retryMax))
			}
			p.mu.Unlock()
			return
		}
		if err != nil {
			// Unretryable sequencing error: drop the entry, keep draining.
			p.errors.Add(1)
			p.dropped.Add(1)
		}
		p.mu.Lock()
		p.queue = p.queue[1:]
		if len(p.queue) == 0 {
			p.queue = nil
		}
		p.backoff = retryMin
		p.mu.Unlock()
	}
}

// close stops the retry loop. Queued entries are abandoned — by then the
// operator has been watching store_errors and a non-empty outbox.
func (p *persister) close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	if p.timer != nil {
		p.timer.Stop()
	}
}

// snapshot assembles and writes the tenant's snapshot from its committed
// controller state. Called under the tenant's logMu right after the
// append that made it due, so the controller state is exactly the logged
// prefix. Failures only count: the cadence check fires again on the next
// append.
func (p *persister) snapshot(id string, spec json.RawMessage, ctl *admission.Controller) {
	sys := ctl.System()
	var jobs []json.RawMessage
	if sys != nil {
		jobs = make([]json.RawMessage, len(sys.Jobs))
		for k := range sys.Jobs {
			b, err := json.Marshal(sys.Jobs[k])
			if err != nil {
				p.errors.Add(1)
				return
			}
			jobs[k] = b
		}
	}
	if err := p.st.WriteSnapshot(id, spec, jobs); err != nil {
		p.errors.Add(1)
		return
	}
	p.snapshots.Add(1)
}

// priVector returns the committed priority assignment to log with an
// operation, or nil when the policy never moves priorities (the job
// records already carry them).
func (s *Server) priVector(ctl *admission.Controller) [][]int {
	if s.cfg.Policy == admission.KeepPriorities {
		return nil
	}
	return ctl.Priorities()
}

// replayOpts are the execution options for startup replay: the
// configured worker pool, but no request context and no budget — replay
// re-applies decisions that already paid their analysis cost once, and a
// budget tuned for single decisions could starve a legitimate recovery.
func (s *Server) replayOpts() analysis.Options {
	opts := s.cfg.Opts
	opts.Context = nil
	opts.Budget = analysis.Budget{}
	return opts
}

// replayTenant rebuilds one tenant from its recovered snapshot + tail.
// A nil return with nil error means the tenant folded to dropped.
func (s *Server) replayTenant(rt store.RecoveredTenant) (*tenant, error) {
	opts := s.replayOpts()
	var ctl *admission.Controller
	var spec json.RawMessage

	boot := func(raw json.RawMessage) error {
		sys, err := model.LoadProcSpec(bytes.NewReader(raw), s.cfg.Limits)
		if err != nil {
			return fmt.Errorf("spec: %w", err)
		}
		ctl, err = admission.NewWithOptions(sys.Procs, s.cfg.Policy, opts)
		if err != nil {
			return fmt.Errorf("spec: %w", err)
		}
		spec = raw
		return nil
	}

	if rt.Snapshot != nil && rt.Snapshot.Live {
		if err := boot(rt.Snapshot.Spec); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		jobs := make([]model.Job, len(rt.Snapshot.Jobs))
		for i, raw := range rt.Snapshot.Jobs {
			job, err := model.LoadJobLimited(bytes.NewReader(raw), s.cfg.Limits)
			if err != nil {
				return nil, fmt.Errorf("snapshot job %d: %w", i, err)
			}
			jobs[i] = job
		}
		if err := ctl.ReinstateAll(jobs); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	}
	for _, op := range rt.Tail {
		var err error
		switch op.Kind {
		case store.OpCreate:
			if ctl != nil {
				err = fmt.Errorf("create while live")
			} else {
				err = boot(op.Spec)
			}
		case store.OpDrop:
			ctl, spec = nil, nil
		case store.OpAdmit, store.OpMutate:
			var job model.Job
			if ctl == nil {
				err = fmt.Errorf("%s before create", op.Kind)
			} else if job, err = model.LoadJobLimited(bytes.NewReader(op.Job), s.cfg.Limits); err == nil {
				if op.Kind == store.OpAdmit {
					err = ctl.Reinstate(job, op.Pri)
				} else {
					err = ctl.ReinstateUpdate(job, op.Pri)
				}
			}
		case store.OpRemove:
			if ctl == nil {
				err = fmt.Errorf("remove before create")
			} else {
				err = ctl.ReinstateRemove(op.Name, op.Pri)
			}
		default:
			err = fmt.Errorf("unknown operation kind %q", op.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("op %d (%s): %w", op.Seq, op.Kind, err)
		}
	}
	if ctl == nil {
		return nil, nil
	}
	if err := s.verifyReplay(ctl, opts); err != nil {
		return nil, err
	}
	return &tenant{ctl: ctl, spec: spec, lastUsed: s.now().UnixNano()}, nil
}

// verifyReplay cross-checks a recovered controller against a cold
// analysis of the same system: the recovered warm-session bounds must be
// field-identical to AnalyzeOpts on a fresh copy. This is the recovery
// self-check the store's crash-consistency argument leans on — a log
// that replays but converges elsewhere is quarantined, not served.
func (s *Server) verifyReplay(ctl *admission.Controller, opts analysis.Options) error {
	sys := ctl.System()
	if sys == nil {
		return nil // no jobs: nothing to cross-check
	}
	_, warm, err := ctl.NamedBounds()
	if err != nil {
		return fmt.Errorf("recovered bounds: %w", err)
	}
	cold, err := analysis.AnalyzeOpts(sys, opts)
	if err != nil {
		return fmt.Errorf("cold cross-check: %w", err)
	}
	if len(warm) != len(cold.WCRTSum) {
		return fmt.Errorf("cold cross-check: %d recovered bounds vs %d cold", len(warm), len(cold.WCRTSum))
	}
	for k := range warm {
		if warm[k] != cold.WCRTSum[k] {
			return fmt.Errorf("cold cross-check: job %d recovered bound %d != cold %d", k, warm[k], cold.WCRTSum[k])
		}
	}
	return nil
}

// replayAll rebuilds every tenant the store recovered. Semantic replay
// failures quarantine that tenant's directory (the framing was valid;
// the operations do not apply) and never abort startup.
func (s *Server) replayAll() {
	for _, rt := range s.persist.st.Tenants() {
		t, err := s.replayTenant(rt)
		if err != nil {
			s.counters.replayQuarantines.Add(1)
			s.recoveryNotes = append(s.recoveryNotes,
				fmt.Sprintf("tenant %s: replay: %v (quarantined)", rt.ID, err))
			if qerr := s.persist.st.QuarantineTenant(rt.ID); qerr != nil {
				s.recoveryNotes = append(s.recoveryNotes,
					fmt.Sprintf("tenant %s: quarantine failed: %v", rt.ID, qerr))
			}
			continue
		}
		if t == nil {
			continue
		}
		s.tenants[rt.ID] = t
	}
}
