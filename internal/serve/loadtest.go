package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"time"

	"rta/internal/metrics"
	"rta/internal/model"
	"rta/internal/workload"
)

// LoadConfig parameterizes one load-test run against one server.
//
// The driver models the paper's admission scenario under serving-system
// traffic: each tenant owns a job-shop draw (internal/workload, Bursty
// releases) and a client that fires admit/remove/query requests with
// Gamma-distributed interarrivals — CV 1 is Poisson, the default CV 4 is
// the high-variance bursty regime of the H5 token-bucket study, where
// requests cluster into bursts that overrun any per-decision budget
// sized for the mean rate.
type LoadConfig struct {
	// Seed keys every random draw (job shops, interarrivals, op mix).
	Seed int64 `json:"seed"`
	// Tenants is the number of independent shards driven concurrently.
	Tenants int `json:"tenants"`
	// Duration bounds the wall-clock driving time.
	Duration time.Duration `json:"duration_ns"`
	// RatePerTenant is the mean decision-request rate per tenant (1/s).
	RatePerTenant float64 `json:"rate_per_tenant"`
	// CV is the interarrival coefficient of variation (Gamma renewal).
	CV float64 `json:"cv"`
	// PoolJobs is the per-tenant pool of admissible jobs cycled through
	// admit/remove churn.
	PoolJobs int `json:"pool_jobs"`
	// BurstSize feeds the workload generator's Bursty release pattern.
	BurstSize int `json:"burst_size"`
}

// DefaultLoad is the committed-benchmark configuration.
var DefaultLoad = LoadConfig{
	Seed:          1,
	Tenants:       4,
	Duration:      2 * time.Second,
	RatePerTenant: 150,
	CV:            4,
	PoolJobs:      10,
	BurstSize:     4,
}

// LoadResult summarizes one run. Latency quantiles are exact
// nearest-rank over the recorded samples (metrics.Quantile) — the same
// convention as every other quantile in this toolkit.
type LoadResult struct {
	Policy   string  `json:"policy"`
	Seconds  float64 `json:"seconds"`
	Offered  int     `json:"offered_requests"`
	Admits   int     `json:"admits_granted"`
	Denied   int     `json:"admits_denied"`
	Removes  int     `json:"removes"`
	Queries  int     `json:"queries"`
	Sheds    int     `json:"sheds_429"`
	Errors   int     `json:"errors"`
	ShedRate float64 `json:"shed_rate"`
	// Decision latencies (admit/remove) in milliseconds.
	DecisionP50Ms float64 `json:"decision_p50_ms"`
	DecisionP99Ms float64 `json:"decision_p99_ms"`
	// Query latencies (/bounds) in milliseconds.
	QueryP50Ms float64 `json:"query_p50_ms"`
	QueryP99Ms float64 `json:"query_p99_ms"`
	// Throughput is completed (non-shed, non-error) requests per second.
	Throughput float64 `json:"throughput_rps"`
	// ErrorSamples holds up to a few exemplar error bodies (diagnostics;
	// Errors carries the full count).
	ErrorSamples []string `json:"error_samples,omitempty"`
}

// tenantDriver drives one tenant's churn loop.
type tenantDriver struct {
	id     string
	client *http.Client
	base   string
	rng    *rand.Rand
	cfg    LoadConfig
	procs  *model.System
	pool   []model.Job

	admitted []int // pool indices currently admitted
	free     []int // pool indices not admitted

	decisions []model.Ticks // ns
	queries   []model.Ticks // ns
	offered   int
	admits    int
	denied    int
	removes   int
	queriesN  int
	sheds     int
	errors    []string
}

// RunLoad drives baseURL with cfg and labels the result with policy (the
// overload policy of the target server — the driver cannot see it from
// outside, so the caller names it).
func RunLoad(ctx context.Context, cfg LoadConfig, baseURL, policy string, client *http.Client) (*LoadResult, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.Tenants <= 0 || cfg.PoolJobs <= 0 || cfg.RatePerTenant <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("serve: load config needs positive tenants, pool, rate and duration")
	}

	drivers := make([]*tenantDriver, cfg.Tenants)
	for i := range drivers {
		d, err := newDriver(cfg, baseURL, client, i)
		if err != nil {
			return nil, err
		}
		drivers[i] = d
	}
	// Create tenants up front so the measured window is pure churn.
	for _, d := range drivers {
		if err := d.createTenant(ctx); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	errc := make(chan error, len(drivers))
	for _, d := range drivers {
		go func(d *tenantDriver) { errc <- d.run(ctx, deadline) }(d)
	}
	for range drivers {
		if err := <-errc; err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start).Seconds()

	res := &LoadResult{Policy: policy, Seconds: elapsed}
	var decisions, queries []model.Ticks
	completed := 0
	for _, d := range drivers {
		res.Offered += d.offered
		res.Admits += d.admits
		res.Denied += d.denied
		res.Removes += d.removes
		res.Queries += d.queriesN
		res.Sheds += d.sheds
		res.Errors += len(d.errors)
		for _, e := range d.errors {
			if e != "" && len(res.ErrorSamples) < 8 {
				res.ErrorSamples = append(res.ErrorSamples, e)
			}
		}
		completed += d.admits + d.denied + d.removes + d.queriesN
		decisions = append(decisions, d.decisions...)
		queries = append(queries, d.queries...)
	}
	if res.Offered > 0 {
		res.ShedRate = float64(res.Sheds) / float64(res.Offered)
	}
	res.Throughput = float64(completed) / elapsed
	sort.Slice(decisions, func(a, b int) bool { return decisions[a] < decisions[b] })
	sort.Slice(queries, func(a, b int) bool { return queries[a] < queries[b] })
	const ms = 1e6
	res.DecisionP50Ms = float64(metrics.Quantile(decisions, 0.50)) / ms
	res.DecisionP99Ms = float64(metrics.Quantile(decisions, 0.99)) / ms
	res.QueryP50Ms = float64(metrics.Quantile(queries, 0.50)) / ms
	res.QueryP99Ms = float64(metrics.Quantile(queries, 0.99)) / ms
	return res, nil
}

func newDriver(cfg LoadConfig, baseURL string, client *http.Client, i int) (*tenantDriver, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
	wcfg := workload.Default
	wcfg.Jobs = cfg.PoolJobs
	wcfg.Arrival = workload.Bursty
	wcfg.BurstSize = cfg.BurstSize
	if wcfg.BurstSize < 1 {
		wcfg.BurstSize = 1
	}
	// Deliberately over-subscribed so admission decisions split between
	// grants and denials: the interesting regime is a churning frontier,
	// not a pool that always fits.
	wcfg.Utilization = 0.7
	draw, err := workload.Generate(rng, wcfg)
	if err != nil {
		return nil, fmt.Errorf("serve: load workload: %w", err)
	}
	d := &tenantDriver{
		id:     fmt.Sprintf("lt%d", i),
		client: client,
		base:   baseURL,
		rng:    rng,
		cfg:    cfg,
		procs:  &model.System{Procs: draw.System.Procs},
		pool:   draw.System.Jobs,
	}
	for k := range d.pool {
		d.pool[k].Name = fmt.Sprintf("job%02d", k)
		d.free = append(d.free, k)
	}
	return d, nil
}

func (d *tenantDriver) createTenant(ctx context.Context) error {
	spec, err := json.Marshal(d.procs)
	if err != nil {
		return err
	}
	status, body, err := d.do(ctx, http.MethodPut, "/v1/tenants/"+d.id, spec, nil)
	if err != nil {
		return fmt.Errorf("serve: creating tenant %s: %w", d.id, err)
	}
	if status != http.StatusCreated {
		return fmt.Errorf("serve: creating tenant %s: status %d: %s", d.id, status, body)
	}
	return nil
}

// run fires requests until the deadline, pacing with Gamma interarrivals.
func (d *tenantDriver) run(ctx context.Context, deadline time.Time) error {
	meanGap := 1 / d.cfg.RatePerTenant
	for time.Now().Before(deadline) && ctx.Err() == nil {
		gap := workload.GammaInterarrival(d.rng, meanGap, d.cfg.CV)
		if gap > 0 {
			t := time.NewTimer(time.Duration(gap * float64(time.Second)))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil
			}
		}
		if !time.Now().Before(deadline) {
			break
		}
		if err := d.step(ctx); err != nil {
			return err
		}
	}
	return nil
}

// step performs one operation: admit when nothing is admitted, otherwise
// a 40/20/40 admit/remove/query mix.
func (d *tenantDriver) step(ctx context.Context) error {
	d.offered++
	switch p := d.rng.Float64(); {
	case len(d.admitted) == 0 || (p < 0.4 && len(d.free) > 0):
		return d.stepAdmit(ctx)
	case p < 0.6 && len(d.admitted) > 0:
		return d.stepRemove(ctx)
	default:
		return d.stepQuery(ctx)
	}
}

func (d *tenantDriver) stepAdmit(ctx context.Context) error {
	if len(d.free) == 0 {
		return d.stepQuery(ctx)
	}
	i := d.rng.Intn(len(d.free))
	k := d.free[i]
	body, err := json.Marshal(&d.pool[k])
	if err != nil {
		return err
	}
	var resp admitResponse
	status, raw, lat, err := d.timedDo(ctx, http.MethodPost, "/v1/tenants/"+d.id+"/admit", body, &resp)
	if err != nil {
		return err
	}
	switch status {
	case http.StatusOK:
		// Only served decisions enter the latency sample: counting the
		// fast 429s would deflate the shedding policy's quantiles — the
		// uncalibrated-bucket artifact the H5 study warns about. Shed cost
		// is reported as ShedRate, next to the latencies, never inside
		// them.
		d.decisions = append(d.decisions, lat)
		if resp.Admitted {
			d.admits++
			d.free = append(d.free[:i], d.free[i+1:]...)
			d.admitted = append(d.admitted, k)
		} else {
			d.denied++
		}
	case http.StatusTooManyRequests:
		d.sheds++
	default:
		d.noteError("admit", status, raw)
	}
	return nil
}

func (d *tenantDriver) stepRemove(ctx context.Context) error {
	i := d.rng.Intn(len(d.admitted))
	k := d.admitted[i]
	body, _ := json.Marshal(removeRequest{Name: d.pool[k].Name})
	var resp removeResponse
	status, raw, lat, err := d.timedDo(ctx, http.MethodPost, "/v1/tenants/"+d.id+"/remove", body, &resp)
	if err != nil {
		return err
	}
	switch status {
	case http.StatusOK:
		d.decisions = append(d.decisions, lat)
		if resp.Removed {
			d.removes++
			d.admitted = append(d.admitted[:i], d.admitted[i+1:]...)
			d.free = append(d.free, k)
		}
	case http.StatusTooManyRequests:
		d.sheds++
	default:
		d.noteError("remove", status, raw)
	}
	return nil
}

func (d *tenantDriver) stepQuery(ctx context.Context) error {
	var resp boundsResponse
	status, raw, lat, err := d.timedDo(ctx, http.MethodGet, "/v1/tenants/"+d.id+"/bounds", nil, &resp)
	if err != nil {
		return err
	}
	switch status {
	case http.StatusOK:
		d.queries = append(d.queries, lat)
		d.queriesN++
	case http.StatusTooManyRequests:
		d.sheds++
	default:
		d.noteError("bounds", status, raw)
	}
	return nil
}

func (d *tenantDriver) noteError(op string, status int, body []byte) {
	if len(d.errors) < 8 { // keep a few exemplars, count the rest
		d.errors = append(d.errors, fmt.Sprintf("%s: status %d: %s", op, status, body))
	} else {
		d.errors = append(d.errors, "")
	}
}

// timedDo is do plus the round-trip latency in nanoseconds.
func (d *tenantDriver) timedDo(ctx context.Context, method, path string, body []byte, out any) (int, []byte, model.Ticks, error) {
	start := time.Now()
	status, raw, err := d.do(ctx, method, path, body, out)
	return status, raw, time.Since(start).Nanoseconds(), err
}

func (d *tenantDriver) do(ctx context.Context, method, path string, body []byte, out any) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, d.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, nil, err
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, raw, fmt.Errorf("serve: decoding %s response: %w", path, err)
		}
	}
	return resp.StatusCode, raw, nil
}

// RunLocalLoad starts an in-process server configured by cfg on a
// loopback port, drives it with lcfg, and tears the server down. This is
// the self-contained load-test path shared by `rta-serve -loadtest` and
// the committed rta-bench serve section.
func RunLocalLoad(ctx context.Context, cfg Config, lcfg LoadConfig) (*LoadResult, error) {
	s := New(cfg)
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()
	res, err := RunLoad(ctx, lcfg, "http://"+ln.Addr().String(), s.overload.Name(), nil)
	if err != nil {
		return nil, err
	}
	select {
	case serr := <-errc:
		if serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			return nil, serr
		}
	default:
	}
	return res, nil
}
