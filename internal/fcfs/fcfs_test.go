package fcfs_test

import (
	"math/rand"
	"sort"
	"testing"

	"rta/internal/curve"
	"rta/internal/fcfs"
	"rta/internal/model"
)

// randTrace returns n strictly increasing arrival times in [0, span)
// (distinct across the whole processor so FCFS order is unambiguous and
// the bounds' tie-breaking cannot blur the simulation comparison).
func randTrace(r *rand.Rand, n int, used map[model.Ticks]bool, span int) []model.Ticks {
	out := make([]model.Ticks, 0, n)
	for len(out) < n {
		t := model.Ticks(r.Intn(span))
		if !used[t] {
			used[t] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// simFCFS serves all instances of all subjobs in global arrival order and
// returns per-subjob completion times.
func simFCFS(arr [][]model.Ticks, exec []model.Ticks) [][]model.Ticks {
	type inst struct{ sub, idx int }
	var all []inst
	for s := range arr {
		for i := range arr[s] {
			all = append(all, inst{s, i})
		}
	}
	sort.Slice(all, func(a, b int) bool { return arr[all[a].sub][all[a].idx] < arr[all[b].sub][all[b].idx] })
	done := make([][]model.Ticks, len(arr))
	for s := range arr {
		done[s] = make([]model.Ticks, len(arr[s]))
	}
	clock := model.Ticks(0)
	for _, in := range all {
		if a := arr[in.sub][in.idx]; a > clock {
			clock = a
		}
		clock += exec[in.sub]
		done[in.sub][in.idx] = clock
	}
	return done
}

// bounds builds the Theorem 8/9 service bounds of subjob s from exact
// arrivals (demand lower and upper coincide).
func bounds(arr [][]model.Ticks, exec []model.Ticks, s int) (lo, hi *curve.Curve) {
	demand := curve.Staircase(arr[s], curve.Value(exec[s]))
	curves := make([]*curve.Curve, len(arr))
	for o := range arr {
		curves[o] = curve.Staircase(arr[o], curve.Value(exec[o]))
	}
	total := curve.Sum(curves...)
	return fcfs.Bounds(exec[s], demand, demand, total, total)
}

// TestBoundsBracketSimulation: on exact arrival traces the Theorem 8/9
// service bounds must bracket the true FCFS schedule - every completion
// no later than the lower bound's, no earlier than the upper bound's -
// with the bounds themselves ordered and structurally valid.
func TestBoundsBracketSimulation(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 300; trial++ {
		subs := 1 + r.Intn(3)
		used := map[model.Ticks]bool{}
		arr := make([][]model.Ticks, subs)
		exec := make([]model.Ticks, subs)
		for s := range arr {
			arr[s] = randTrace(r, 1+r.Intn(6), used, 60)
			exec[s] = model.Ticks(1 + r.Intn(4))
		}
		done := simFCFS(arr, exec)
		for s := range arr {
			lo, hi := bounds(arr, exec, s)
			if err := lo.Validate(); err != nil {
				t.Fatalf("trial %d: invalid lower bound: %v", trial, err)
			}
			if err := hi.Validate(); err != nil {
				t.Fatalf("trial %d: invalid upper bound: %v", trial, err)
			}
			for x := model.Ticks(0); x < 200; x++ {
				if lo.Eval(x) > hi.Eval(x) {
					t.Fatalf("trial %d sub %d: lo(%d)=%d > hi(%d)=%d",
						trial, s, x, lo.Eval(x), x, hi.Eval(x))
				}
			}
			late := lo.CompletionTimes(curve.Value(exec[s]), len(arr[s]))
			early := hi.CompletionTimes(curve.Value(exec[s]), len(arr[s]))
			for i := range arr[s] {
				if curve.IsInf(late[i]) || late[i] < done[s][i] {
					t.Fatalf("trial %d sub %d inst %d: latest completion %d < simulated %d",
						trial, s, i, late[i], done[s][i])
				}
				if early[i] > done[s][i] {
					t.Fatalf("trial %d sub %d inst %d: earliest completion %d > simulated %d",
						trial, s, i, early[i], done[s][i])
				}
			}
		}
	}
}

// TestZeroInterferenceIdentity: a subjob alone on the processor is served
// work-conserving, so the lower bound's completion times equal the exact
// single-queue recurrence c[i] = max(a[i], c[i-1]) + tau.
func TestZeroInterferenceIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	for trial := 0; trial < 200; trial++ {
		used := map[model.Ticks]bool{}
		arr := [][]model.Ticks{randTrace(r, 1+r.Intn(8), used, 50)}
		exec := []model.Ticks{model.Ticks(1 + r.Intn(5))}
		lo, _ := bounds(arr, exec, 0)
		late := lo.CompletionTimes(curve.Value(exec[0]), len(arr[0]))
		c := model.Ticks(0)
		for i, a := range arr[0] {
			if a > c {
				c = a
			}
			c += exec[0]
			if late[i] != c {
				t.Fatalf("trial %d inst %d: completion %d, recurrence %d (arr %v exec %d)",
					trial, i, late[i], c, arr[0], exec[0])
			}
		}
	}
}

// TestMonotoneInTotalWorkload: growing the processor-wide workload (an
// extra co-located subjob) can only delay service - the lower bound
// never rises anywhere.
func TestMonotoneInTotalWorkload(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < 200; trial++ {
		used := map[model.Ticks]bool{}
		own := randTrace(r, 1+r.Intn(5), used, 50)
		other := randTrace(r, 1+r.Intn(5), used, 50)
		exec := model.Ticks(1 + r.Intn(4))
		demand := curve.Staircase(own, curve.Value(exec))
		extra := curve.Staircase(other, curve.Value(1+r.Intn(4)))
		totalAlone := demand
		totalBoth := curve.Sum(demand, extra)
		loAlone, _ := fcfs.Bounds(exec, demand, demand, totalAlone, totalAlone)
		loBoth, _ := fcfs.Bounds(exec, demand, demand, totalBoth, totalBoth)
		for x := model.Ticks(0); x < 200; x++ {
			if loBoth.Eval(x) > loAlone.Eval(x) {
				t.Fatalf("trial %d: extra workload raised the lower bound at t=%d: %d > %d",
					trial, x, loBoth.Eval(x), loAlone.Eval(x))
			}
		}
	}
}
