// Package fcfs computes the per-subjob service bounds of Section 4.2.3 for
// first-come-first-served processors: the utilization function of
// Theorem 7 and the service bounds of Theorems 8 and 9.
//
// Inside the approximate (Theorem 4) pipeline the arrival functions of the
// subjobs sharing the processor are only known as bounds, so each
// ingredient is instantiated with the sound polarity:
//
//   - the *lower* service bound composes the subjob's latest-arrival
//     workload with the utilization of the latest-arrival total workload
//     against the earliest-arrival total workload threshold (all three
//     choices make the bound smaller, i.e. completions later);
//   - the *upper* service bound composes the earliest-arrival workload
//     with the utilization of the earliest-arrival total against the
//     latest-arrival total threshold, plus Theorem 9's +tau, capped by the
//     arrived work.
//
// With exact arrivals (e.g. on the first hop) both collapse to the paper's
// formulas, up to the simultaneous-arrival tie-breaking correction
// documented at curve.ComposeFCFS.
package fcfs

import (
	"rta/internal/curve"
	"rta/internal/model"
)

// Bounds computes the (lower, upper) service bounds for one subjob on a
// FCFS processor.
//
// demandLo/demandHi are the subjob's workload staircases from latest and
// earliest arrivals; totalLo/totalHi the processor-wide sums of the same
// (Equation 21, including the subjob itself); exec the subjob's execution
// time tau.
func Bounds(exec model.Ticks, demandLo, demandHi, totalLo, totalHi *curve.Curve) (lo, hi *curve.Curve) {
	utilLo := curve.Utilization(totalLo) // Theorem 7 on the sparsest workload
	utilHi := curve.Utilization(totalHi) // and on the densest
	return BoundsFromTotals(nil, exec, demandLo, demandHi, totalLo, totalHi, utilLo, utilHi)
}

// BoundsFromTotals is Bounds taking precomputed utilization functions
// alongside the totals: they depend only on the processor-wide workload,
// so the engines compute each once per processor (sched.Memo) instead of
// once per subjob. Intermediates are carved from sc (nil = heap); the
// returned bounds are always heap-backed.
func BoundsFromTotals(sc *curve.Scratch, exec model.Ticks, demandLo, demandHi, totalLo, totalHi, utilLo, utilHi *curve.Curve) (lo, hi *curve.Curve) {
	lo = curve.ComposeFCFSIn(sc, demandLo, totalHi, utilLo, false) // Theorem 8
	hi = curve.ComposeFCFSIn(sc, demandHi, totalLo, utilHi, true). // Theorem 9
									AddConstIn(sc, exec).
									Min(demandHi)
	if sc != nil {
		lo = lo.Clone() // the composition is arena-backed; the bound is stored
	}
	return lo, hi
}
