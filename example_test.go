package rta_test

import (
	"fmt"
	"os"

	"rta"
)

// Example demonstrates the basic analyze workflow: build a system with
// the fluent builder and compute exact worst-case response times.
func Example() {
	sys := rta.NewSystem().
		Processor("CPU", rta.SPP).
		Processor("NET", rta.SPP).
		Job("control", 9_000,
			rta.Hop("CPU", 2_000, 0),
			rta.Hop("NET", 1_000, 0)).
		Job("logging", 50_000,
			rta.Hop("CPU", 5_000, 1),
			rta.Hop("NET", 3_000, 1)).
		Releases("control", 0, 10_000, 20_000).
		Releases("logging", 0, 0, 0).
		Build()

	res, err := rta.Analyze(sys)
	if err != nil {
		panic(err)
	}
	for k := range sys.Jobs {
		fmt.Printf("%s: %d\n", sys.JobName(k), res.WCRT[k])
	}
	// Output:
	// control: 3000
	// logging: 22000
}

// ExampleSimulate cross-checks the exact analysis against the
// discrete-event simulator: on all-SPP systems they agree instant for
// instant.
func ExampleSimulate() {
	sys := rta.NewSystem().
		Processor("CPU", rta.SPP).
		Job("a", 100, rta.Hop("CPU", 3, 0)).
		Job("b", 100, rta.Hop("CPU", 7, 1)).
		Releases("a", 0, 5).
		Releases("b", 0).
		Build()

	res, _ := rta.Exact(sys)
	simRes := rta.Simulate(sys)
	fmt.Println("analysis: ", res.WCRT)
	fmt.Println("simulated:", simRes.WorstResponse(0), simRes.WorstResponse(1))
	// Output:
	// analysis:  [3 13]
	// simulated: 3 13
}

// ExampleEnvelope shows envelope-based admission: specify a bursty
// contract instead of a concrete trace, and analyze its maximal
// (critical-instant) trace.
func ExampleEnvelope() {
	// Up to 3 frames back to back, one frame per 10 ticks sustained.
	env := rta.BurstEnvelope(3, 10, 8)
	trace := env.MaximalTrace(6)
	fmt.Println("worst-case releases:", trace)

	sys := rta.NewSystem().
		Processor("LINK", rta.SPP).
		Job("frames", 100, rta.Hop("LINK", 4, 0)).
		Releases("frames", trace...).
		Build()
	res, _ := rta.Exact(sys)
	fmt.Println("wcrt under the contract:", res.WCRT[0])
	// Output:
	// worst-case releases: [0 0 0 10 20 30]
	// wcrt under the contract: 12
}

// ExampleRenderGantt draws the simulated schedule.
func ExampleRenderGantt() {
	sys := rta.NewSystem().
		Processor("CPU", rta.SPP).
		Job("hi", 100, rta.Hop("CPU", 4, 0)).
		Job("lo", 100, rta.Hop("CPU", 8, 1)).
		Releases("hi", 4).
		Releases("lo", 0).
		Build()
	rta.RenderGantt(os.Stdout, sys, rta.Simulate(sys), 12)
	// Output:
	// CPU        |BBBBAAAABBBB|
	//             0         12
	//             A=hi B=lo
}

// ExampleBreakdown measures the load margin of a schedulable system.
func ExampleBreakdown() {
	sys := rta.NewSystem().
		Processor("CPU", rta.SPP).
		Job("a", 10, rta.Hop("CPU", 2, 0)).
		Job("b", 30, rta.Hop("CPU", 5, 1)).
		Releases("a", 0, 10, 20).
		Releases("b", 0, 15).
		Build()
	scale, _ := rta.Breakdown(sys, 4)
	fmt.Printf("execution times can grow %.2fx\n", scale)
	// Output:
	// execution times can grow 2.50x
}
