package rta_test

// The benchmark harness regenerates every panel of the paper's evaluation
// (Figures 3 and 4) and reports the admission probabilities as benchmark
// metrics, next to micro-benchmarks of the analysis engines and the
// ablations called out in DESIGN.md. Full-fidelity runs (1000 sets/point,
// the paper's scale) are produced by cmd/rta-jobshop; the benchmarks use
// a reduced set count so the whole suite stays minutes, not hours.

import (
	"fmt"
	"testing"

	"rta"
	"rta/internal/analysis"
	"rta/internal/cpa"
	"rta/internal/curve"
	"rta/internal/envelope"
	"rta/internal/experiments"
	"rta/internal/metrics"
	"rta/internal/model"
	"rta/internal/priority"
	"rta/internal/spp"
	"rta/internal/stats"
	"rta/internal/sunliu"
	"rta/internal/workload"
)

// benchSets is the per-point sample size used inside benchmarks.
const benchSets = 24

var benchUtils = []float64{0.3, 0.6, 0.9}

// runPanel sweeps one panel per iteration and reports the admission
// probability of every method at each utilization as metrics.
func runPanel(b *testing.B, cfg workload.Config, methods []experiments.Method) {
	b.Helper()
	var panel experiments.Panel
	for i := 0; i < b.N; i++ {
		var err error
		panel, err = experiments.Sweep(cfg, experiments.Options{
			Seed: 1, Sets: benchSets, Utilizations: benchUtils, Methods: methods,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range panel.Points {
		for m, pr := range pt.Admission {
			name := fmt.Sprintf("admit(%s)@%.1f", m, pt.Utilization)
			b.ReportMetric(pr.Estimate(), name)
		}
	}
}

// ---- Figure 3: periodic arrivals (Equations 25/26) ----

func benchFigure3(b *testing.B, stages int, deadlineFactor float64) {
	cfg := workload.Default
	cfg.Arrival = workload.Periodic
	cfg.Stages = stages
	cfg.DeadlineFactor = deadlineFactor
	runPanel(b, cfg, []experiments.Method{
		experiments.SPPExact, experiments.SunLiu, experiments.SPNPApp, experiments.FCFSApp,
	})
}

func BenchmarkFigure3a_1Stage_Deadline2x(b *testing.B)  { benchFigure3(b, 1, 2) }
func BenchmarkFigure3b_2Stages_Deadline2x(b *testing.B) { benchFigure3(b, 2, 2) }
func BenchmarkFigure3c_4Stages_Deadline2x(b *testing.B) { benchFigure3(b, 4, 2) }
func BenchmarkFigure3d_1Stage_Deadline4x(b *testing.B)  { benchFigure3(b, 1, 4) }
func BenchmarkFigure3e_2Stages_Deadline4x(b *testing.B) { benchFigure3(b, 2, 4) }
func BenchmarkFigure3f_4Stages_Deadline4x(b *testing.B) { benchFigure3(b, 4, 4) }

// ---- Figure 4: aperiodic/bursty arrivals (Equations 27/28) ----

func benchFigure4(b *testing.B, mean, scale float64) {
	cfg := workload.Default
	cfg.Arrival = workload.Aperiodic
	cfg.Stages = 4
	cfg.DeadlineScale = scale
	cfg.DeadlineOffset = mean - scale
	if cfg.DeadlineOffset < 0 {
		cfg.DeadlineOffset = 0
	}
	runPanel(b, cfg, []experiments.Method{
		experiments.SPPExact, experiments.SPNPApp, experiments.FCFSApp,
	})
}

func BenchmarkFigure4a_Mean6_Std1(b *testing.B)  { benchFigure4(b, 6, 1) }
func BenchmarkFigure4b_Mean6_Std2(b *testing.B)  { benchFigure4(b, 6, 2) }
func BenchmarkFigure4c_Mean6_Std4(b *testing.B)  { benchFigure4(b, 6, 4) }
func BenchmarkFigure4d_Mean10_Std1(b *testing.B) { benchFigure4(b, 10, 1) }
func BenchmarkFigure4e_Mean10_Std2(b *testing.B) { benchFigure4(b, 10, 2) }
func BenchmarkFigure4f_Mean10_Std4(b *testing.B) { benchFigure4(b, 10, 4) }

// ---- Ablations ----

// BenchmarkAblationUtilizationNormalization compares the as-printed
// Equation (26) workload (realized utilization below the parameter)
// against the normalized form the experiments default to.
func BenchmarkAblationUtilizationNormalization(b *testing.B) {
	for _, norm := range []bool{false, true} {
		name := "asPrinted"
		if norm {
			name = "normalized"
		}
		b.Run(name, func(b *testing.B) {
			cfg := workload.Default
			cfg.Stages = 2
			cfg.NormalizeUtilization = norm
			runPanel(b, cfg, []experiments.Method{experiments.SPPExact})
		})
	}
}

// BenchmarkAblationHorizon measures how the trace horizon changes the
// exact WCRT (the worst case should stabilize once the horizon covers the
// critical busy window) and what it costs.
func BenchmarkAblationHorizon(b *testing.B) {
	for _, hp := range []float64{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("periods=%g", hp), func(b *testing.B) {
			cfg := workload.Default
			cfg.Stages = 2
			cfg.Utilization = 0.7
			cfg.HorizonPeriods = hp
			var mean float64
			for i := 0; i < b.N; i++ {
				var s stats.Summary
				for set := 0; set < benchSets; set++ {
					r := stats.NewRand(7, int64(set))
					d, err := workload.Generate(r, cfg)
					if err != nil {
						b.Fatal(err)
					}
					res, err := spp.Analyze(d.WithScheduler(model.SPP))
					if err != nil {
						b.Fatal(err)
					}
					for k := range res.WCRT {
						s.Add(float64(res.WCRT[k]))
					}
				}
				mean = s.Mean()
			}
			b.ReportMetric(mean, "meanWCRT")
		})
	}
}

// BenchmarkAblationTheorem4VsPerInstance quantifies the pessimism of the
// paper's Equation (11) sum against the per-instance pipeline bound the
// same bookkeeping provides.
func BenchmarkAblationTheorem4VsPerInstance(b *testing.B) {
	cfg := workload.Default
	cfg.Stages = 4
	cfg.Utilization = 0.6
	var ratio stats.Summary
	for i := 0; i < b.N; i++ {
		ratio = stats.Summary{}
		for set := 0; set < benchSets; set++ {
			r := stats.NewRand(9, int64(set))
			d, err := workload.Generate(r, cfg)
			if err != nil {
				b.Fatal(err)
			}
			sys := d.WithScheduler(model.SPNP)
			res, err := analysis.Approximate(sys)
			if err != nil {
				b.Fatal(err)
			}
			for k := range res.WCRT {
				if !rta.IsInf(res.WCRTSum[k]) && res.WCRT[k] > 0 {
					ratio.Add(float64(res.WCRTSum[k]) / float64(res.WCRT[k]))
				}
			}
		}
	}
	b.ReportMetric(ratio.Mean(), "sum/perInstance")
}

// ---- Engine micro-benchmarks ----

func benchDraw(util float64, stages int) *workload.Draw {
	cfg := workload.Default
	cfg.Stages = stages
	cfg.Utilization = util
	r := stats.NewRand(3, 0)
	d, err := workload.Generate(r, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

func BenchmarkExactAnalysis(b *testing.B) {
	d := benchDraw(0.7, 4)
	sys := d.WithScheduler(model.SPP)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spp.Analyze(sys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApproximateSPNP(b *testing.B) {
	d := benchDraw(0.7, 4)
	sys := d.WithScheduler(model.SPNP)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Approximate(sys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApproximateFCFS(b *testing.B) {
	d := benchDraw(0.7, 4)
	sys := d.WithScheduler(model.FCFS)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Approximate(sys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulation(b *testing.B) {
	d := benchDraw(0.7, 4)
	sys := d.WithScheduler(model.SPP)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rta.Simulate(sys)
	}
}

func BenchmarkCurveServiceTransform(b *testing.B) {
	// A representative transform: 256-instance staircase against a
	// throttled availability.
	var jumps []curve.Time
	for i := 0; i < 256; i++ {
		jumps = append(jumps, curve.Time(i*37))
	}
	demand := curve.Staircase(jumps, 11)
	higher := curve.Staircase(jumps, 5)
	avail := curve.Availability([]*curve.Curve{curve.ServiceTransform(curve.Identity(), higher)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curve.ServiceTransform(avail, demand)
	}
}

func BenchmarkCurveInverse(b *testing.B) {
	var jumps []curve.Time
	for i := 0; i < 1024; i++ {
		jumps = append(jumps, curve.Time(i*13))
	}
	s := curve.ServiceTransform(curve.Identity(), curve.Staircase(jumps, 7))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CompletionTimes(7, 1024)
	}
}

// BenchmarkExtensionBurstSweep is an extension experiment beyond the
// paper's figures: admission probability as a function of burst size at a
// constant average arrival rate (the title's "bursty job arrivals" made
// quantitative). Larger bursts concentrate the same long-run load into
// spikes; the trace-exact SPP analysis prices exactly that.
func BenchmarkExtensionBurstSweep(b *testing.B) {
	for _, burst := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("burst=%d", burst), func(b *testing.B) {
			cfg := workload.Default
			cfg.Stages = 2
			cfg.Arrival = workload.Bursty
			cfg.BurstSize = burst
			cfg.DeadlineFactor = 3
			runPanel(b, cfg, []experiments.Method{experiments.SPPExact, experiments.SPNPApp})
		})
	}
}

// BenchmarkExtensionSyncProtocols is a second extension experiment: the
// paper's introduction argues that synchronization protocols (Sun&Liu's
// Phase Modification, Release Guard) simplify analysis but add average
// latency, and that direct synchronization with the exact analysis wins
// on both axes. This bench measures all three on the same periodic job
// shops: worst-case bound (exact, per policy) and mean simulated
// response, reported as metrics relative to direct synchronization.
func BenchmarkExtensionSyncProtocols(b *testing.B) {
	cfg := workload.Default
	cfg.Stages = 3
	cfg.Utilization = 0.5
	var wcrtPM, wcrtRG, meanPM, meanRG stats.Summary
	for i := 0; i < b.N; i++ {
		wcrtPM, wcrtRG, meanPM, meanRG = stats.Summary{}, stats.Summary{}, stats.Summary{}, stats.Summary{}
		for set := 0; set < benchSets; set++ {
			r := stats.NewRand(17, int64(set))
			d, err := workload.Generate(r, cfg)
			if err != nil {
				b.Fatal(err)
			}
			ds := d.WithScheduler(model.SPP)
			dsRes, err := spp.Analyze(ds)
			if err != nil {
				b.Fatal(err)
			}
			dsSim := metrics.Summarize(ds, rta.Simulate(ds))

			// Phase Modification: offsets from the holistic per-hop
			// bounds, the way [1] deploys it.
			hol, err := sunliu.Analyze(d.SunLiu())
			if err != nil {
				b.Fatal(err)
			}
			pm := ds.Clone()
			usable := true
			for k := range pm.Jobs {
				pm.Jobs[k].Sync = model.PhaseModification
				pm.Jobs[k].Phases = make([]model.Ticks, len(pm.Jobs[k].Subjobs))
				for j := 1; j < len(pm.Jobs[k].Subjobs); j++ {
					if hol.HopResponse[k][j-1] == sunliu.Inf {
						usable = false
					} else {
						pm.Jobs[k].Phases[j] = hol.HopResponse[k][j-1]
					}
				}
			}
			rg := ds.Clone()
			for k := range rg.Jobs {
				rg.Jobs[k].Sync = model.ReleaseGuard
				rg.Jobs[k].Period = d.Period[k]
			}
			rgRes, err := spp.Analyze(rg)
			if err != nil {
				b.Fatal(err)
			}
			rgSim := metrics.Summarize(rg, rta.Simulate(rg))
			for k := range ds.Jobs {
				if dsRes.WCRT[k] > 0 && !rta.IsInf(rgRes.WCRT[k]) {
					wcrtRG.Add(float64(rgRes.WCRT[k]) / float64(dsRes.WCRT[k]))
				}
				if dsSim.Jobs[k].Mean > 0 {
					meanRG.Add(rgSim.Jobs[k].Mean / dsSim.Jobs[k].Mean)
				}
			}
			if usable {
				pmRes, err := spp.Analyze(pm)
				if err != nil {
					b.Fatal(err)
				}
				pmSim := metrics.Summarize(pm, rta.Simulate(pm))
				for k := range ds.Jobs {
					if dsRes.WCRT[k] > 0 && !rta.IsInf(pmRes.WCRT[k]) {
						wcrtPM.Add(float64(pmRes.WCRT[k]) / float64(dsRes.WCRT[k]))
					}
					if dsSim.Jobs[k].Mean > 0 {
						meanPM.Add(pmSim.Jobs[k].Mean / dsSim.Jobs[k].Mean)
					}
				}
			}
		}
	}
	b.ReportMetric(wcrtPM.Mean(), "wcrt(PM/DS)")
	b.ReportMetric(wcrtRG.Mean(), "wcrt(RG/DS)")
	b.ReportMetric(meanPM.Mean(), "meanResp(PM/DS)")
	b.ReportMetric(meanRG.Mean(), "meanResp(RG/DS)")
}

// BenchmarkExtensionCPAComparison positions the paper's trace-exact
// analysis against a modern envelope-based Compositional Performance
// Analysis baseline (internal/cpa, pyCPA-style) on the same workloads:
// periodic job shops analyzed by CPA from periodic envelopes and by the
// trace analysis from the synchronous traces. The reported metric is the
// mean ratio CPA-bound / trace-exact WCRT (>= 1; the gap is the price of
// abstracting traces into envelopes and propagating jitter).
func BenchmarkExtensionCPAComparison(b *testing.B) {
	for _, util := range []float64{0.5, 0.8} {
		b.Run(fmt.Sprintf("util=%g", util), func(b *testing.B) {
			benchCPAComparison(b, util)
		})
	}
}

func benchCPAComparison(b *testing.B, util float64) {
	cfg := workload.Default
	cfg.Stages = 3
	cfg.Utilization = util
	var ratio stats.Summary
	admitCPA, admitExact := 0, 0
	for i := 0; i < b.N; i++ {
		ratio = stats.Summary{}
		admitCPA, admitExact = 0, 0
		for set := 0; set < benchSets; set++ {
			r := stats.NewRand(21, int64(set))
			d, err := workload.Generate(r, cfg)
			if err != nil {
				b.Fatal(err)
			}
			sys := d.WithScheduler(model.SPP)
			exact, err := spp.Analyze(sys)
			if err != nil {
				b.Fatal(err)
			}
			csys := &cpa.System{Procs: sys.Procs}
			for k := range sys.Jobs {
				csys.Tasks = append(csys.Tasks, cpa.Task{
					Deadline: sys.Jobs[k].Deadline,
					Arrival:  envelope.Periodic(d.Period[k], 8),
					Subjobs:  sys.Jobs[k].Subjobs,
				})
			}
			cres, err := cpa.Analyze(csys)
			if err != nil {
				b.Fatal(err)
			}
			if cres.Schedulable(csys) {
				admitCPA++
			}
			ok := true
			for k := range sys.Jobs {
				if rta.IsInf(exact.WCRT[k]) || exact.WCRT[k] > sys.Jobs[k].Deadline {
					ok = false
				}
				if exact.WCRT[k] > 0 && cres.WCRT[k] != cpa.Inf {
					ratio.Add(float64(cres.WCRT[k]) / float64(exact.WCRT[k]))
				}
			}
			if ok {
				admitExact++
			}
		}
	}
	b.ReportMetric(ratio.Mean(), "cpaBound/exact")
	b.ReportMetric(float64(admitExact)/float64(benchSets), "admit(exact)")
	b.ReportMetric(float64(admitCPA)/float64(benchSets), "admit(CPA)")
}

// BenchmarkExtensionSynchronousVsRandomPhases quantifies how much of the
// rejection at high utilization is the synchronous critical instant of
// Equation (25): with random phases the same job sets admit far more.
func BenchmarkExtensionSynchronousVsRandomPhases(b *testing.B) {
	for _, phases := range []bool{false, true} {
		name := "synchronous"
		if phases {
			name = "randomPhases"
		}
		b.Run(name, func(b *testing.B) {
			cfg := workload.Default
			cfg.Stages = 2
			cfg.RandomPhases = phases
			runPanel(b, cfg, []experiments.Method{experiments.SPPExact})
		})
	}
}

// BenchmarkExtensionPrioritySynthesis measures the admission gained by
// replacing Equation (24)'s relative-deadline-monotonic priorities with
// Audsley synthesis on the same draws.
func BenchmarkExtensionPrioritySynthesis(b *testing.B) {
	cfg := workload.Default
	cfg.Stages = 2
	cfg.Utilization = 0.85
	cfg.DeadlineFactor = 1.5
	rdmAdmit, audAdmit := 0, 0
	for i := 0; i < b.N; i++ {
		rdmAdmit, audAdmit = 0, 0
		for set := 0; set < benchSets; set++ {
			r := stats.NewRand(29, int64(set))
			d, err := workload.Generate(r, cfg)
			if err != nil {
				b.Fatal(err)
			}
			sys := d.WithScheduler(model.SPP)
			res, err := spp.Analyze(sys)
			if err != nil {
				b.Fatal(err)
			}
			if res.Schedulable(sys) {
				rdmAdmit++
			}
			synth := sys.Clone()
			ok, err := priority.Audsley(synth, func(s *model.System, job int) (bool, error) {
				r, err := spp.Analyze(s)
				if err != nil {
					return false, err
				}
				return !rta.IsInf(r.WCRT[job]) && r.WCRT[job] <= s.Jobs[job].Deadline, nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if ok {
				audAdmit++
			}
		}
	}
	b.ReportMetric(float64(rdmAdmit)/benchSets, "admit(RDM)")
	b.ReportMetric(float64(audAdmit)/benchSets, "admit(Audsley)")
}

// BenchmarkExtensionHeterogeneous exercises the paper's "heterogeneous
// systems" claim: the same job shop with stage-alternating schedulers
// (SPP, SPNP, FCFS, SPP) analyzed end to end by the Theorem 4 pipeline.
func BenchmarkExtensionHeterogeneous(b *testing.B) {
	cfg := workload.Default
	cfg.Stages = 4
	cfg.DeadlineFactor = 4
	var pr stats.Proportion
	for i := 0; i < b.N; i++ {
		pr = stats.Proportion{}
		for set := 0; set < benchSets; set++ {
			for _, u := range benchUtils {
				c := cfg
				c.Utilization = u
				r := stats.NewRand(31, int64(set)*7+int64(u*100))
				d, err := workload.Generate(r, c)
				if err != nil {
					b.Fatal(err)
				}
				sys := d.System.Clone()
				scheds := []model.Scheduler{model.SPP, model.SPNP, model.FCFS, model.SPP}
				for p := range sys.Procs {
					sys.Procs[p].Sched = scheds[(p/cfg.ProcsPerStage)%len(scheds)]
				}
				res, err := analysis.Approximate(sys)
				if err != nil {
					b.Fatal(err)
				}
				pr.Add(res.Schedulable(sys))
			}
		}
	}
	b.ReportMetric(pr.Estimate(), "admit(hetero)")
}

// BenchmarkExtensionOtherParameters backs the paper's closing remark that
// "other parameter values led to similar observations": the Figure 3
// ordering at a fixed utilization, swept over the number of jobs and
// processors per stage.
func BenchmarkExtensionOtherParameters(b *testing.B) {
	for _, jobs := range []int{4, 8, 12} {
		for _, procs := range []int{2, 3} {
			b.Run(fmt.Sprintf("jobs=%d_procs=%d", jobs, procs), func(b *testing.B) {
				cfg := workload.Default
				cfg.Stages = 2
				cfg.Jobs = jobs
				cfg.ProcsPerStage = procs
				cfg.Utilization = 0.8
				var ex, sl stats.Proportion
				for i := 0; i < b.N; i++ {
					ex, sl = stats.Proportion{}, stats.Proportion{}
					for set := 0; set < benchSets; set++ {
						r := stats.NewRand(37, int64(set))
						d, err := workload.Generate(r, cfg)
						if err != nil {
							b.Fatal(err)
						}
						got, err := experiments.Admit(d, []experiments.Method{experiments.SPPExact, experiments.SunLiu})
						if err != nil {
							b.Fatal(err)
						}
						ex.Add(got[experiments.SPPExact])
						sl.Add(got[experiments.SunLiu])
						if got[experiments.SunLiu] && !got[experiments.SPPExact] {
							b.Fatal("ordering violated: S&L admitted where exact rejected")
						}
					}
				}
				b.ReportMetric(ex.Estimate(), "admit(exact)")
				b.ReportMetric(sl.Estimate(), "admit(S&L)")
			})
		}
	}
}

// BenchmarkExtensionTightAdmission compares the paper's Equation (11)
// admission (sum of per-hop bounds) against admission on the per-instance
// pipeline bound the same bookkeeping provides, for both approximate
// methods.
func BenchmarkExtensionTightAdmission(b *testing.B) {
	cfg := workload.Default
	cfg.Stages = 2
	cfg.DeadlineFactor = 2
	runPanel(b, cfg, []experiments.Method{
		experiments.SPNPApp, experiments.SPNPAppTight,
		experiments.FCFSApp, experiments.FCFSAppTight,
	})
}
