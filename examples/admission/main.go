// Admission control: the paper frames schedulability analysis as the
// heart of an admission controller for dynamic job sets. This example
// plays that role with the library's controller: a stream of job requests
// arrives at a two-stage cluster; each is admitted only when the analysis
// still certifies every deadline with the newcomer included. Two policies
// are compared side by side: keeping the requester's priorities versus
// synthesizing an assignment with Audsley's algorithm.
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"math/rand"

	"rta"
)

func main() {
	r := rand.New(rand.NewSource(7))
	procs := []rta.Processor{
		{Name: "stage1-a", Sched: rta.SPP},
		{Name: "stage1-b", Sched: rta.SPP},
		{Name: "stage2-a", Sched: rta.SPP},
		{Name: "stage2-b", Sched: rta.SPP},
	}
	fixed := rta.NewAdmission(procs, rta.KeepPriorities)
	synth := rta.NewAdmission(procs, rta.SynthesizedPolicy)

	fixedCount, synthCount := 0, 0
	for i := 0; i < 40; i++ {
		j := randomJob(r, i)
		okF, err := fixed.Request(j)
		if err != nil {
			panic(err)
		}
		okS, err := synth.Request(j)
		if err != nil {
			panic(err)
		}
		if okF {
			fixedCount++
		}
		if okS {
			synthCount++
		}
		mark := func(ok bool) string {
			if ok {
				return "ADMIT "
			}
			return "reject"
		}
		fmt.Printf("%-8s deadline %4d burst %d   fixed: %s   synthesized: %s\n",
			j.Name, j.Deadline, len(j.Releases), mark(okF), mark(okS))
	}
	fmt.Printf("\nadmitted: %d with submitted priorities, %d with synthesis\n",
		fixedCount, synthCount)

	fmt.Println("\nguaranteed response bounds of the synthesized set:")
	sys := synth.System()
	bounds, err := synth.Bounds()
	if err != nil {
		panic(err)
	}
	for k := range sys.Jobs {
		fmt.Printf("  %-8s wcrt %4d / deadline %4d\n", sys.JobName(k), bounds[k], sys.Jobs[k].Deadline)
	}
}

// randomJob draws a two-hop request with a bursty release trace and an
// adversarial submitted priority (looser deadlines get better priority).
func randomJob(r *rand.Rand, i int) rta.Job {
	deadline := rta.Ticks(60 + r.Intn(400))
	exec1 := rta.Ticks(5 + r.Intn(30))
	exec2 := rta.Ticks(5 + r.Intn(30))
	job := rta.Job{
		Name:     fmt.Sprintf("req-%02d", i),
		Deadline: deadline,
		Subjobs: []rta.Subjob{
			{Proc: r.Intn(2), Exec: exec1, Priority: int(1000 - deadline)},
			{Proc: 2 + r.Intn(2), Exec: exec2, Priority: int(1000 - deadline)},
		},
	}
	burst := 1 + r.Intn(3)
	period := rta.Ticks(100 + r.Intn(300))
	for t := rta.Ticks(0); t <= 1000; t += period {
		for c := 0; c < burst; c++ {
			job.Releases = append(job.Releases, t)
		}
	}
	return job
}
