// Quickstart: build a two-processor pipeline, analyze it exactly, and
// check the result against the discrete-event simulator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"rta"
)

func main() {
	// Times are integer ticks; here 1 tick = 1 microsecond.
	const ms = 1000

	// A control job and a logging job share a CPU and a network link.
	// Priorities are per processor: smaller value = higher priority.
	sys := rta.NewSystem().
		Processor("CPU", rta.SPP).
		Processor("NET", rta.SPP).
		Job("control", 9*ms,
			rta.Hop("CPU", 2*ms, 0),
			rta.Hop("NET", 1*ms, 0)).
		Job("logging", 50*ms,
			rta.Hop("CPU", 5*ms, 1),
			rta.Hop("NET", 3*ms, 1)).
		// The control job arrives periodically; the logger is bursty:
		// three records back to back every 40 ms.
		Releases("control", 0, 10*ms, 20*ms, 30*ms, 40*ms, 50*ms).
		Releases("logging", 0, 0, 0, 40*ms, 40*ms, 40*ms).
		Build()

	res, err := rta.Analyze(sys)
	if err != nil {
		panic(err)
	}
	simRes := rta.Simulate(sys)

	fmt.Printf("analysis method: %s\n\n", res.Method)
	for k := range sys.Jobs {
		fmt.Printf("%-8s deadline %5d  worst-case response %5d  simulated %5d\n",
			sys.JobName(k), sys.Jobs[k].Deadline, res.WCRT[k], simRes.WorstResponse(k))
	}
	fmt.Println()
	// On all-SPP systems the analysis is exact: the bound IS the worst
	// observed response over the trace.
	for k := range sys.Jobs {
		if res.WCRT[k] != simRes.WorstResponse(k) {
			panic("exact analysis must match the simulation")
		}
		if res.WCRT[k] > sys.Jobs[k].Deadline {
			fmt.Printf("%s misses its deadline!\n", sys.JobName(k))
		} else {
			fmt.Printf("%s meets its deadline with %d ticks to spare.\n",
				sys.JobName(k), sys.Jobs[k].Deadline-res.WCRT[k])
		}
	}
}
