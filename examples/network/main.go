// Network: end-to-end packet delay bounds for a small switched network -
// the application domain that motivated this line of analysis (the
// authors applied it to static-priority ATM scheduling). Links are
// non-preemptive "processors", packets are job instances, and the bursty
// data flow is specified by a leaky-bucket contract rather than a trace.
//
//	go run ./examples/network
package main

import (
	"fmt"

	"rta"
)

func main() {
	// Topology: two edge switches feeding a shared backbone link.
	//
	//   sensors --edge1--+
	//                    +--backbone--> sink
	//   cameras --edge2--+
	//
	// Rates in bytes/tick (1 tick = 1 us): 100 B/us = 800 Mbit/s edges,
	// 1000 B/us backbone. Voice-like telemetry competes with bursty
	// camera traffic on the backbone.
	telemetryEnv := rta.PeriodicEnvelope(1_000, 8) // one packet per ms
	cameraEnv := rta.BurstEnvelope(6, 2_000, 12)   // bursts of 6 frames

	net := &rta.Net{
		Links: []rta.Link{
			{Name: "edge1", Sched: rta.SPNP, BytesPerTick: 100, Propagation: 10},
			{Name: "edge2", Sched: rta.SPNP, BytesPerTick: 100, Propagation: 10},
			{Name: "backbone", Sched: rta.SPNP, BytesPerTick: 1000},
		},
		Flows: []rta.Flow{
			{Name: "telemetry", Path: []string{"edge1", "backbone"},
				PacketBytes: 500, Priority: 0, Deadline: 2_000,
				Envelope: &telemetryEnv, Packets: 10},
			{Name: "camera", Path: []string{"edge2", "backbone"},
				PacketBytes: 9_000, Priority: 1, Deadline: 50_000,
				Envelope: &cameraEnv, Packets: 12},
			{Name: "bulk", Path: []string{"edge1", "backbone"},
				PacketBytes: 15_000, Priority: 2, Deadline: 200_000,
				Envelope: &cameraEnv, Packets: 12},
		},
	}

	sys, err := net.Build()
	if err != nil {
		panic(err)
	}
	res, err := rta.Analyze(sys)
	if err != nil {
		panic(err)
	}
	simRes := rta.Simulate(sys)
	rep := rta.Summarize(sys, simRes)

	fmt.Println("worst-case end-to-end packet delays (us):")
	for k := range sys.Jobs {
		m := rep.Jobs[k]
		verdict := "OK"
		if res.WCRTSum[k] > sys.Jobs[k].Deadline {
			verdict = "BUDGET EXCEEDED"
		}
		fmt.Printf("  %-10s bound %7d   simulated max %7d  p99 %7d  mean %9.1f  deadline %7d  %s\n",
			sys.JobName(k), res.WCRTSum[k], m.Max, m.P99, m.Mean, sys.Jobs[k].Deadline, verdict)
	}
	fmt.Println("\nThe telemetry flow keeps a microsecond-level bound although the")
	fmt.Println("camera bursts monopolize the backbone: non-preemptive priority")
	fmt.Println("limits the inversion to one in-flight packet per link.")
}
