// Fork-join precedence: a camera frame is captured once, then two
// analysis branches process it in parallel — object detection on the DSP
// and logging compression on the CPU — and a fusion hop waits for BOTH
// branches before acting. The job is a diamond-shaped precedence DAG, not
// a chain: the fusion hop's release is the join (the latest branch
// completion plus its link latency), and the end-to-end response runs to
// the last sink.
//
// The example analyzes the DAG exactly (all-SPP), cross-checks against
// the discrete-event simulator, and shows why a chain model of the same
// work is wrong in both directions: serializing the branches inflates the
// bound, dropping one underestimates it.
//
//	go run ./examples/forkjoin
package main

import (
	"fmt"
	"os"

	"rta"
)

func main() {
	// Bursty capture: pairs of frames back to back every 200 ticks.
	var frames []rta.Ticks
	for t := rta.Ticks(0); t < 2000; t += 200 {
		frames = append(frames, t, t)
	}

	build := func(hops ...rta.HopSpec) *rta.System {
		return rta.NewSystem().
			Processor("CPU", rta.SPP).
			Processor("DSP", rta.SPP).
			Job("camera", 400, hops...).
			Job("housekeeping", 2_000, rta.Hop("CPU", 25, 3)).
			Releases("camera", frames...).
			Releases("housekeeping", 0, 500, 1000, 1500).
			Build()
	}

	// The diamond: hop 0 captures, hops 1 and 2 run in parallel after it
	// (After(0)), hop 3 fuses after both (After(1, 2)). Hop 0's Link
	// latency is the frame transfer each branch waits out.
	dag := build(
		rta.Hop("CPU", 10, 0).Link(5),
		rta.Hop("DSP", 60, 1).After(0),
		rta.Hop("CPU", 35, 1).After(0),
		rta.Hop("CPU", 8, 2).After(1, 2),
	)

	// The same work forced into a chain: capture, detect, compress, fuse
	// in series. The branches no longer overlap.
	chain := build(
		rta.Hop("CPU", 10, 0).Link(5),
		rta.Hop("DSP", 60, 1),
		rta.Hop("CPU", 35, 1),
		rta.Hop("CPU", 8, 2),
	)

	for _, c := range []struct {
		name string
		sys  *rta.System
	}{{"fork-join", dag}, {"serialized", chain}} {
		res, err := rta.Exact(c.sys)
		if err != nil {
			panic(err)
		}
		sim := rta.Simulate(c.sys)
		fmt.Printf("%-11s camera wcrt %3d (simulated %3d)  housekeeping wcrt %3d\n",
			c.name, res.WCRT[0], sim.WorstResponse(0), res.WCRT[1])
	}

	fmt.Println("\nThe fork-join bound prices the branches in parallel: the join")
	fmt.Println("waits for the slower branch, not for their sum. The structure:")
	fmt.Println()
	rta.WriteDOT(os.Stdout, dag)
}
