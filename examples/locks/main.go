// Locks: the paper's conclusion leaves shared resources as future work;
// this library implements them for resources local to one processor under
// the immediate priority ceiling protocol. The example shows the textbook
// priority-inversion scenario, how the ceiling bounds the inversion to a
// single critical section, and how the analysis prices it.
//
//	go run ./examples/locks
package main

import (
	"fmt"
	"os"

	"rta"
)

func main() {
	// A control task, a telemetry task and a logger share a CPU; control
	// and logger both use a flash-storage driver guarded by one lock.
	const (
		flashLock = 1
	)
	sys := rta.NewSystem().
		Processor("CPU", rta.SPP).
		Job("control", 40,
			// Holds the flash lock for 2 ticks in the middle of its work.
			rta.Hop("CPU", 8, 0).Lock(flashLock, 3, 2)).
		Job("telemetry", 200,
			rta.Hop("CPU", 12, 1)).
		Job("logger", 400,
			// Writes a large block: 9 of its 15 ticks hold the lock.
			rta.Hop("CPU", 15, 2).Lock(flashLock, 2, 9)).
		Releases("control", 10, 60).
		Releases("telemetry", 12, 80).
		Releases("logger", 0, 50).
		Build()

	res, err := rta.Analyze(sys)
	if err != nil {
		panic(err)
	}
	simRes := rta.Simulate(sys)

	fmt.Println("With the flash lock (immediate priority ceiling protocol):")
	for k := range sys.Jobs {
		fmt.Printf("  %-10s bound %4d  simulated worst %4d  deadline %4d\n",
			sys.JobName(k), res.WCRT[k], simRes.WorstResponse(k), sys.Jobs[k].Deadline)
	}

	fmt.Println("\nSimulated schedule (C=control preempts, except inside the logger's lock):")
	rta.RenderGantt(os.Stdout, sys, simRes, 80)

	// The analysis accounts exactly one lower-priority critical section
	// of blocking for the control task: the logger's 9-tick lock hold.
	noLock := rta.NewSystem().
		Processor("CPU", rta.SPP).
		Job("control", 40, rta.Hop("CPU", 8, 0)).
		Job("telemetry", 200, rta.Hop("CPU", 12, 1)).
		Job("logger", 400, rta.Hop("CPU", 15, 2)).
		Releases("control", 10, 60).
		Releases("telemetry", 12, 80).
		Releases("logger", 0, 50).
		Build()
	resNoLock, err := rta.Analyze(noLock)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ncontrol bound without the lock: %d; with it: %d (the 9-tick section, priced once)\n",
		resNoLock.WCRT[0], res.WCRT[0])
}
