// Paper: the exact system of the paper's Figure 2 - a four-stage shop
// with two processors per stage and the two jobs the text walks through:
// T1 on P1, P3, P5, P7 and T2 on P1, P4, P5, P8 (sharing P1 and P5).
// The example analyzes it with all four of Section 5.1's methods and
// prints the comparison the paper's evaluation makes statistically, on
// this one concrete instance.
//
//	go run ./examples/paper
package main

import (
	"fmt"
	"os"

	"rta"
)

func main() {
	// Periods and execution times are not specified in the text; these
	// values give both jobs meaningful interference on the shared first
	// and third stages. One tick = 1 us.
	const (
		t1Period = rta.Ticks(7_000)
		t2Period = rta.Ticks(14_000)
	)
	build := func(sched rta.Scheduler) *rta.System {
		b := rta.NewSystem()
		for i := 1; i <= 8; i++ {
			b.Processor(fmt.Sprintf("P%d", i), sched)
		}
		b.Job("T1", 2*t1Period,
			rta.Hop("P1", 1_800, 0),
			rta.Hop("P3", 3_800, 0),
			rta.Hop("P5", 1_500, 0),
			rta.Hop("P7", 900, 0))
		b.Job("T2", 2*t2Period,
			rta.Hop("P1", 2_500, 1),
			rta.Hop("P4", 1_700, 1),
			rta.Hop("P5", 3_400, 1),
			rta.Hop("P8", 1_200, 1))
		var r1, r2 []rta.Ticks
		for t := rta.Ticks(0); t <= 6*t1Period; t += t1Period {
			r1 = append(r1, t)
		}
		for t := rta.Ticks(0); t <= 5*t2Period; t += t2Period {
			r2 = append(r2, t)
		}
		b.Releases("T1", r1...)
		b.Releases("T2", r2...)
		return b.Build()
	}

	// SPP/Exact.
	spp := build(rta.SPP)
	exact, err := rta.Exact(spp)
	if err != nil {
		panic(err)
	}
	// SPP/S&L (holistic baseline on the periodic description).
	hol, err := rta.Holistic(&rta.HolisticSystem{
		Procs: spp.Procs,
		Tasks: []rta.HolisticTask{
			{Period: t1Period, Deadline: 2 * t1Period, Subjobs: spp.Jobs[0].Subjobs},
			{Period: t2Period, Deadline: 2 * t2Period, Subjobs: spp.Jobs[1].Subjobs},
		},
	})
	if err != nil {
		panic(err)
	}
	// SPNP/App and FCFS/App.
	spnp := build(rta.SPNP)
	appNP, err := rta.Approximate(spnp)
	if err != nil {
		panic(err)
	}
	fcfs := build(rta.FCFS)
	appF, err := rta.Approximate(fcfs)
	if err != nil {
		panic(err)
	}

	fmt.Println("The Figure 2 job shop, one concrete instance (times in us):")
	fmt.Printf("%-6s %12s %12s %12s %12s %10s\n",
		"job", "SPP/Exact", "SPP/S&L", "SPNP/App", "FCFS/App", "deadline")
	for k := 0; k < 2; k++ {
		fmt.Printf("%-6s %12d %12d %12d %12d %10d\n",
			spp.JobName(k), exact.WCRT[k], hol.WCRT[k], appNP.WCRTSum[k], appF.WCRTSum[k],
			spp.Jobs[k].Deadline)
	}
	fmt.Println("\nThe ordering the paper's Figure 3 shows statistically appears")
	fmt.Println("already on this single instance: the exact analysis is tightest,")
	fmt.Println("the holistic baseline inflates the multi-stage bound, and the")
	fmt.Println("non-preemptive/FCFS pipelines pay for their approximation.")

	fmt.Println("\nSPP schedule (first 30 ms):")
	simRes := rta.Simulate(spp)
	rta.RenderGantt(os.Stdout, spp, simRes, 100)
}
