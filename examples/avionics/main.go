// Avionics: a heterogeneous four-stage flight-control pipeline of the
// kind the paper's introduction motivates. Sensor data crosses a FCFS
// field bus, is fused and controlled on preemptive CPUs, and actuator
// commands leave over a non-preemptive backplane - three different
// schedulers in one system, analyzed end to end with the Theorem 4
// pipeline.
//
//	go run ./examples/avionics
package main

import (
	"fmt"

	"rta"
)

func main() {
	const us = 1 // 1 tick = 1 microsecond

	b := rta.NewSystem().
		Processor("sensor-bus", rta.FCFS).  // field bus delivers frames in order
		Processor("fusion-cpu", rta.SPP).   // preemptive RTOS core
		Processor("control-cpu", rta.SPP).  // preemptive RTOS core
		Processor("actuator-bus", rta.SPNP) // backplane: frames cannot be preempted

	// Three feedback loops with different rates and criticalities, plus a
	// telemetry job that only burdens the buses.
	b.Job("pitch", 12_000*us,
		rta.Hop("sensor-bus", 400*us, 0),
		rta.Hop("fusion-cpu", 900*us, 0),
		rta.Hop("control-cpu", 1_200*us, 0),
		rta.Hop("actuator-bus", 500*us, 0))
	b.Job("yaw", 20_000*us,
		rta.Hop("sensor-bus", 500*us, 1),
		rta.Hop("fusion-cpu", 1_400*us, 1),
		rta.Hop("control-cpu", 1_800*us, 1),
		rta.Hop("actuator-bus", 700*us, 1))
	b.Job("trim", 60_000*us,
		rta.Hop("sensor-bus", 700*us, 2),
		rta.Hop("fusion-cpu", 2_500*us, 2),
		rta.Hop("control-cpu", 3_000*us, 2),
		rta.Hop("actuator-bus", 1_000*us, 2))
	b.Job("telemetry", 100_000*us,
		rta.Hop("sensor-bus", 1_500*us, 3),
		rta.Hop("actuator-bus", 2_000*us, 3))

	// Release traces over a 100 ms window: the loops are periodic, the
	// telemetry job sends a burst of four frames every 50 ms.
	release := func(period rta.Ticks) []rta.Ticks {
		var out []rta.Ticks
		for t := rta.Ticks(0); t <= 100_000; t += period {
			out = append(out, t)
		}
		return out
	}
	b.Releases("pitch", release(5_000)...)
	b.Releases("yaw", release(10_000)...)
	b.Releases("trim", release(25_000)...)
	b.Releases("telemetry", 0, 0, 0, 0, 50_000, 50_000, 50_000, 50_000)

	sys := b.Build()
	res, err := rta.Approximate(sys)
	if err != nil {
		panic(err)
	}
	simRes := rta.Simulate(sys)

	fmt.Println("hop-by-hop worst-case bounds (Theorem 4 pipeline):")
	for k := range sys.Jobs {
		fmt.Printf("\n%s (deadline %d us)\n", sys.JobName(k), sys.Jobs[k].Deadline)
		for j, hop := range res.Hops[k] {
			fmt.Printf("  hop %d on %-12s local response bound %6d us\n",
				j+1, sys.ProcName(sys.Jobs[k].Subjobs[j].Proc), hop.Local)
		}
		verdict := "GUARANTEED"
		switch {
		case res.WCRTSum[k] <= sys.Jobs[k].Deadline:
			// Even the conservative Theorem 4 sum fits.
		case res.WCRT[k] <= sys.Jobs[k].Deadline:
			verdict = "GUARANTEED (per-instance bound; Theorem 4 sum too pessimistic)"
		default:
			verdict = "NOT GUARANTEED"
		}
		fmt.Printf("  end-to-end: Theorem 4 sum %d us, per-instance bound %d us, simulated worst %d us\n  -> %s\n",
			res.WCRTSum[k], res.WCRT[k], simRes.WorstResponse(k), verdict)
	}
}
