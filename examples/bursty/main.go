// Bursty arrivals: the paper's reason for existing. Classic periodic
// analysis must model a bursty stream by its minimum inter-arrival time,
// which is hopelessly pessimistic; the trace-based analysis prices the
// burst exactly. This example sweeps the burst size of a foreground job
// at a fixed average rate and reports the exact worst-case response of a
// background job, next to what a minimum-inter-arrival (sporadic)
// abstraction would have to assume.
//
//	go run ./examples/bursty
package main

import (
	"fmt"

	"rta"
)

func main() {
	const window = rta.Ticks(2000) // trace horizon
	fmt.Println("burst  foreground-wcrt  background-wcrt  sporadic-model-background")
	for _, burst := range []int{1, 2, 4, 8} {
		// Foreground: bursts of `burst` instances every burst*100 ticks -
		// the average rate (one instance per 100 ticks) never changes.
		var fg []rta.Ticks
		period := rta.Ticks(burst) * 100
		for t := rta.Ticks(0); t <= window; t += period {
			for c := 0; c < burst; c++ {
				fg = append(fg, t)
			}
		}
		// Background: one instance every 500 ticks.
		var bg []rta.Ticks
		for t := rta.Ticks(0); t <= window; t += 500 {
			bg = append(bg, t)
		}
		sys := rta.NewSystem().
			Processor("CPU", rta.SPP).
			Job("foreground", 10_000, rta.Hop("CPU", 40, 0)).
			Job("background", 10_000, rta.Hop("CPU", 120, 1)).
			Releases("foreground", fg...).
			Releases("background", bg...).
			Build()
		res, err := rta.Exact(sys)
		if err != nil {
			panic(err)
		}

		// The sporadic abstraction sees the same stream as "instances at
		// least 0 apart within a burst": its only safe model is the
		// minimum inter-arrival time, which for any burst size >= 2 is 0
		// within the burst - forcing the classical analysis to treat the
		// whole burst as simultaneous load every period. We emulate it by
		// releasing the full burst at every average-rate slot.
		var worst []rta.Ticks
		for t := rta.Ticks(0); t <= window; t += 100 {
			for c := 0; c < burst; c++ {
				worst = append(worst, t)
			}
		}
		sporadic := rta.NewSystem().
			Processor("CPU", rta.SPP).
			Job("foreground", 10_000, rta.Hop("CPU", 40, 0)).
			Job("background", 10_000, rta.Hop("CPU", 120, 1)).
			Releases("foreground", worst...).
			Releases("background", bg...).
			Build()
		resSpor, err := rta.Exact(sporadic)
		if err != nil {
			panic(err)
		}

		fmt.Printf("%5d  %15d  %15d  %25d\n",
			burst, res.WCRT[0], res.WCRT[1], resSpor.WCRT[1])
	}
	fmt.Println("\nThe trace-based analysis tracks the real burst structure; the")
	fmt.Println("sporadic abstraction overloads the processor as bursts grow.")
}
