module rta

go 1.22
